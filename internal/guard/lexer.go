package guard

import (
	"fmt"
	"strings"
	"unicode"
)

// tokenKind enumerates lexical token classes.
type tokenKind int

const (
	tokEOF tokenKind = iota
	tokIdent
	tokKeyword
	tokLBracket // [
	tokRBracket // ]
	tokLParen   // (
	tokRParen   // )
	tokPipe     // |
	tokComma    // ,
	tokArrow    // -> or →
	tokStar     // *
	tokStarStar // **
)

func (k tokenKind) String() string {
	switch k {
	case tokEOF:
		return "end of guard"
	case tokIdent:
		return "label"
	case tokKeyword:
		return "keyword"
	case tokLBracket:
		return "'['"
	case tokRBracket:
		return "']'"
	case tokLParen:
		return "'('"
	case tokRParen:
		return "')'"
	case tokPipe:
		return "'|'"
	case tokComma:
		return "','"
	case tokArrow:
		return "'->'"
	case tokStar:
		return "'*'"
	case tokStarStar:
		return "'**'"
	}
	return fmt.Sprintf("token(%d)", int(k))
}

// keywords maps the upper-cased spelling to itself; guards are
// case-insensitive (Section III).
var keywords = map[string]bool{
	"MORPH":          true,
	"MUTATE":         true,
	"TRANSLATE":      true,
	"COMPOSE":        true,
	"DROP":           true,
	"CLONE":          true,
	"NEW":            true,
	"RESTRICT":       true,
	"CHILDREN":       true,
	"DESCENDANTS":    true,
	"CAST":           true,
	"CAST-NARROWING": true,
	"CAST-WIDENING":  true,
	"TYPE-FILL":      true,
}

type token struct {
	kind tokenKind
	text string // keyword spellings are upper-cased; idents keep case
	pos  int
}

// SyntaxError reports a lexical or parse error with its byte offset in the
// guard text.
type SyntaxError struct {
	Pos     int
	Message string
	Source  string
}

func (e *SyntaxError) Error() string {
	return fmt.Sprintf("guard: syntax error at offset %d: %s", e.Pos, e.Message)
}

// lex tokenizes a guard. Identifiers may contain letters, digits, '_', '.',
// '@', and '-'; a '-' immediately followed by '>' terminates the identifier
// so that "a->b" lexes as three tokens.
func lex(src string) ([]token, error) {
	var toks []token
	i := 0
	n := len(src)
	for i < n {
		c := src[i]
		switch {
		case c == ' ' || c == '\t' || c == '\n' || c == '\r':
			i++
		case c == '[':
			toks = append(toks, token{tokLBracket, "[", i})
			i++
		case c == ']':
			toks = append(toks, token{tokRBracket, "]", i})
			i++
		case c == '(':
			toks = append(toks, token{tokLParen, "(", i})
			i++
		case c == ')':
			toks = append(toks, token{tokRParen, ")", i})
			i++
		case c == '|':
			toks = append(toks, token{tokPipe, "|", i})
			i++
		case c == ',':
			toks = append(toks, token{tokComma, ",", i})
			i++
		case c == '*':
			if i+1 < n && src[i+1] == '*' {
				toks = append(toks, token{tokStarStar, "**", i})
				i += 2
			} else {
				toks = append(toks, token{tokStar, "*", i})
				i++
			}
		case c == '-' && i+1 < n && src[i+1] == '>':
			toks = append(toks, token{tokArrow, "->", i})
			i += 2
		case strings.HasPrefix(src[i:], "→"): // →
			toks = append(toks, token{tokArrow, "->", i})
			i += len("→")
		case isIdentStart(rune(c)):
			start := i
			for i < n && isIdentPart(src, i) {
				i++
			}
			text := src[start:i]
			if up := strings.ToUpper(text); keywords[up] {
				toks = append(toks, token{tokKeyword, up, start})
			} else {
				toks = append(toks, token{tokIdent, text, start})
			}
		default:
			return nil, &SyntaxError{Pos: i, Message: fmt.Sprintf("unexpected character %q", c), Source: src}
		}
	}
	toks = append(toks, token{tokEOF, "", n})
	return toks, nil
}

func isIdentStart(c rune) bool {
	return unicode.IsLetter(c) || c == '_' || c == '@'
}

// isIdentPart reports whether the byte at src[i] continues an identifier.
// '-' continues an identifier unless it starts an arrow.
func isIdentPart(src string, i int) bool {
	c := src[i]
	switch {
	case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c >= '0' && c <= '9':
		return true
	case c == '_' || c == '.' || c == '@':
		return true
	case c == '-':
		return i+1 >= len(src) || src[i+1] != '>'
	}
	return false
}
