package guard

import (
	"math/rand"
	"testing"
)

// TestParseNeverPanics feeds token soup to the guard parser.
func TestParseNeverPanics(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	words := []string{
		"MORPH", "MUTATE", "TRANSLATE", "DROP", "CLONE", "NEW", "RESTRICT",
		"CAST", "CAST-WIDENING", "TYPE-FILL", "COMPOSE",
		"[", "]", "(", ")", "|", ",", "->", "*", "**", "a", "b.c", "@x", "→",
	}
	for i := 0; i < 5000; i++ {
		n := rng.Intn(12)
		src := ""
		for j := 0; j < n; j++ {
			src += words[rng.Intn(len(words))] + " "
		}
		func() {
			defer func() {
				if r := recover(); r != nil {
					t.Fatalf("parser panicked on %q: %v", src, r)
				}
			}()
			_, _ = Parse(src)
		}()
	}
}

// TestLexIdentifierEdges covers hyphen/arrow boundaries.
func TestLexIdentifierEdges(t *testing.T) {
	p, err := Parse("TRANSLATE a-b -> c-d")
	if err != nil {
		t.Fatal(err)
	}
	r := p.Stages[0].Renames[0]
	if r.From != "a-b" || r.To != "c-d" {
		t.Errorf("hyphenated labels = %+v", r)
	}
	// Trailing hyphen at end of input must not crash.
	if _, err := Parse("MORPH x-"); err != nil {
		t.Errorf("trailing hyphen label: %v", err)
	}
}
