package guard

import (
	"strings"
	"testing"
)

func TestParsePaperExamples(t *testing.T) {
	// Every guard that appears in the paper must parse.
	guards := []string{
		"MORPH author [ name book [ title ] ]",
		"MORPH author [ title name publisher [ name ] ]",
		"MORPH data [author [* book [** publisher [*]]]]",
		"MUTATE book [ publisher [ name ] ]",
		"MORPH author [name] | MUTATE (DROP name)",
		"CAST-WIDENING (TYPE-FILL MUTATE author [ title ])",
		"MUTATE name [ author ]",
		"MUTATE data [ name author ]",
		"MUTATE (DROP title [ book ])",
		"MUTATE author [ CLONE title ]",
		"MUTATE (NEW scribe) [ author ]",
		"MORPH (RESTRICT name [ author ]) [ title ]",
		"MORPH author [ name ] | TRANSLATE author -> writer",
		"MUTATE site",
		"MORPH author",
		"MORPH author [title [year]]",
		"MORPH dblp [author [title [year [pages] url]]]",
		"MORPH CHILDREN author",
		"MORPH DESCENDANTS book",
		"COMPOSE MORPH author [ name ], MUTATE (DROP name)",
	}
	for _, g := range guards {
		if _, err := Parse(g); err != nil {
			t.Errorf("Parse(%q): %v", g, err)
		}
	}
}

func TestParseMorphStructure(t *testing.T) {
	p := MustParse("MORPH author [ name book [ title ] ]")
	if len(p.Stages) != 1 || p.Stages[0].Kind != StageMorph {
		t.Fatalf("stages = %+v", p.Stages)
	}
	root := p.Stages[0].Patterns[0]
	if root.Kind != TermLabel || root.Label != "author" {
		t.Fatalf("root = %+v", root)
	}
	if len(root.Kids) != 2 {
		t.Fatalf("kids = %d, want 2", len(root.Kids))
	}
	if root.Kids[0].Label != "name" || root.Kids[1].Label != "book" {
		t.Errorf("kid labels = %s, %s", root.Kids[0].Label, root.Kids[1].Label)
	}
	if len(root.Kids[1].Kids) != 1 || root.Kids[1].Kids[0].Label != "title" {
		t.Errorf("book kids wrong: %+v", root.Kids[1].Kids)
	}
}

func TestParseStarAbbreviations(t *testing.T) {
	p := MustParse("MORPH data [author [* book [** publisher [*]]]]")
	data := p.Stages[0].Patterns[0]
	author := data.Kids[0]
	if author.Kids[0].Kind != TermChildren {
		t.Errorf("author first kid = %v, want CHILDREN", author.Kids[0].Kind)
	}
	book := author.Kids[1]
	if book.Kids[0].Kind != TermDescendants {
		t.Errorf("book first kid = %v, want DESCENDANTS", book.Kids[0].Kind)
	}
}

func TestParseChildrenKeywordDesugars(t *testing.T) {
	a := MustParse("MORPH CHILDREN author")
	b := MustParse("MORPH author [*]")
	if a.String() != b.String() {
		t.Errorf("CHILDREN author = %s, author [*] = %s", a.String(), b.String())
	}
	c := MustParse("MORPH DESCENDANTS author")
	d := MustParse("MORPH author [**]")
	if c.String() != d.String() {
		t.Errorf("DESCENDANTS author = %s, author [**] = %s", c.String(), d.String())
	}
}

func TestParseCaseAndWhitespaceInsensitive(t *testing.T) {
	a := MustParse("morph author[name book[title]]")
	b := MustParse("MORPH  author  [ name   book [ title ] ]")
	if a.String() != b.String() {
		t.Errorf("case/space variants differ: %s vs %s", a, b)
	}
}

func TestParseCastModifiers(t *testing.T) {
	tests := []struct {
		src      string
		mode     CastMode
		typeFill bool
	}{
		{"MORPH a", CastNone, false},
		{"CAST MORPH a", CastWeak, false},
		{"CAST-NARROWING MORPH a", CastNarrowing, false},
		{"CAST-WIDENING MORPH a", CastWidening, false},
		{"TYPE-FILL MORPH a", CastNone, true},
		{"CAST-WIDENING (TYPE-FILL MUTATE author [ title ])", CastWidening, true},
		{"TYPE-FILL CAST MORPH a", CastWeak, true},
	}
	for _, tt := range tests {
		p, err := Parse(tt.src)
		if err != nil {
			t.Errorf("Parse(%q): %v", tt.src, err)
			continue
		}
		if p.Cast != tt.mode || p.TypeFill != tt.typeFill {
			t.Errorf("Parse(%q): cast=%v typeFill=%v, want %v %v", tt.src, p.Cast, p.TypeFill, tt.mode, tt.typeFill)
		}
	}
}

func TestParseConflictingCasts(t *testing.T) {
	if _, err := Parse("CAST-NARROWING CAST-WIDENING MORPH a"); err == nil {
		t.Error("conflicting casts accepted")
	}
	if _, err := Parse("CAST CAST MORPH a"); err != nil {
		t.Errorf("repeated identical cast rejected: %v", err)
	}
}

func TestParseComposePipe(t *testing.T) {
	p := MustParse("MORPH author [name] | MUTATE (DROP name) | TRANSLATE author -> writer")
	if len(p.Stages) != 3 {
		t.Fatalf("stages = %d, want 3", len(p.Stages))
	}
	if p.Stages[0].Kind != StageMorph || p.Stages[1].Kind != StageMutate || p.Stages[2].Kind != StageTranslate {
		t.Errorf("stage kinds wrong: %v %v %v", p.Stages[0].Kind, p.Stages[1].Kind, p.Stages[2].Kind)
	}
	drop := p.Stages[1].Patterns[0]
	if drop.Kind != TermDrop || drop.Operand.Label != "name" {
		t.Errorf("drop term = %+v", drop)
	}
}

func TestParseComposeKeywordEquivalentToPipe(t *testing.T) {
	a := MustParse("COMPOSE MORPH author [ name ], MUTATE (DROP name)")
	b := MustParse("MORPH author [ name ] | MUTATE (DROP name)")
	if a.String() != b.String() {
		t.Errorf("COMPOSE != pipe: %s vs %s", a, b)
	}
}

func TestParseTranslate(t *testing.T) {
	p := MustParse("TRANSLATE author -> writer, name -> fullname")
	s := p.Stages[0]
	if s.Kind != StageTranslate || len(s.Renames) != 2 {
		t.Fatalf("stage = %+v", s)
	}
	if s.Renames[0] != (Rename{"author", "writer"}) || s.Renames[1] != (Rename{"name", "fullname"}) {
		t.Errorf("renames = %+v", s.Renames)
	}
}

func TestParseTranslateUnicodeArrow(t *testing.T) {
	p, err := Parse("TRANSLATE author → writer")
	if err != nil {
		t.Fatalf("unicode arrow: %v", err)
	}
	if p.Stages[0].Renames[0].To != "writer" {
		t.Errorf("renames = %+v", p.Stages[0].Renames)
	}
}

func TestParseRestrictWithOuterKids(t *testing.T) {
	p := MustParse("MORPH (RESTRICT name [ author ]) [ title ]")
	r := p.Stages[0].Patterns[0]
	if r.Kind != TermRestrict {
		t.Fatalf("root = %v", r.Kind)
	}
	if r.Operand.Label != "name" || len(r.Operand.Kids) != 1 || r.Operand.Kids[0].Label != "author" {
		t.Errorf("operand = %+v", r.Operand)
	}
	if len(r.Kids) != 1 || r.Kids[0].Label != "title" {
		t.Errorf("outer kids = %+v", r.Kids)
	}
}

func TestParseNewWrapper(t *testing.T) {
	p := MustParse("MUTATE (NEW scribe) [ author ]")
	n := p.Stages[0].Patterns[0]
	if n.Kind != TermNew || n.Label != "scribe" {
		t.Fatalf("new term = %+v", n)
	}
	if len(n.Kids) != 1 || n.Kids[0].Label != "author" {
		t.Errorf("new kids = %+v", n.Kids)
	}
}

func TestParseDottedLabels(t *testing.T) {
	p := MustParse("MORPH book.author [ name ]")
	if p.Stages[0].Patterns[0].Label != "book.author" {
		t.Errorf("dotted label = %q", p.Stages[0].Patterns[0].Label)
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		"",
		"MORPH",
		"MORPH [",
		"MORPH a [",
		"MORPH a ]",
		"MORPH a [ b",
		"TRANSLATE a",
		"TRANSLATE a ->",
		"TRANSLATE -> b",
		"NEW x",
		"MORPH a | ",
		"MORPH a extra ( ",
		"MUTATE (DROP)",
		"MORPH (a",
		"CAST",
		"MORPH a %",
	}
	for _, src := range bad {
		if _, err := Parse(src); err == nil {
			t.Errorf("Parse(%q) succeeded, want error", src)
		} else if !strings.Contains(err.Error(), "guard:") {
			t.Errorf("Parse(%q) error %v lacks prefix", src, err)
		}
	}
}

func TestSyntaxErrorPosition(t *testing.T) {
	_, err := Parse("MORPH author [ % ]")
	se, ok := err.(*SyntaxError)
	if !ok {
		t.Fatalf("error type = %T", err)
	}
	if se.Pos != 15 {
		t.Errorf("error pos = %d, want 15", se.Pos)
	}
}

func TestProgramStringRoundTrip(t *testing.T) {
	guards := []string{
		"MORPH author [ name book [ title ] ]",
		"MUTATE (DROP title [ book ])",
		"TYPE-FILL CAST-WIDENING MUTATE author [ title ]",
		"MORPH (RESTRICT name [ author ]) [ title ]",
		"MORPH author [ name ] | TRANSLATE author -> writer",
		"MUTATE (NEW scribe) [ author ]",
		"MORPH data [ author [ * book [ ** ] ] ]",
	}
	for _, g := range guards {
		p1 := MustParse(g)
		p2 := MustParse(p1.String())
		if p1.String() != p2.String() {
			t.Errorf("String round trip unstable: %q -> %q -> %q", g, p1.String(), p2.String())
		}
	}
}

func TestTermStringAllForms(t *testing.T) {
	// Every term kind must round-trip through String().
	forms := []string{
		"MORPH a",
		"MORPH a [ * ]",
		"MORPH a [ ** ]",
		"MUTATE (NEW n) [ a ]",
		"MUTATE (DROP a)",
		"MUTATE x [ CLONE y ]",
		"MORPH (RESTRICT a [ b ]) [ c ]",
	}
	for _, f := range forms {
		p1 := MustParse(f)
		p2 := MustParse(p1.String())
		if p1.String() != p2.String() {
			t.Errorf("%q: unstable String: %q vs %q", f, p1.String(), p2.String())
		}
	}
}

func TestStageKindAndCastStrings(t *testing.T) {
	if StageMorph.String() != "MORPH" || StageMutate.String() != "MUTATE" || StageTranslate.String() != "TRANSLATE" {
		t.Error("stage kind strings wrong")
	}
	if CastNone.String() != "STRICT" || CastWeak.String() != "CAST" {
		t.Error("cast mode strings wrong")
	}
	if TermDrop.String() != "DROP" || TermChildren.String() != "CHILDREN" {
		t.Error("term kind strings wrong")
	}
}
