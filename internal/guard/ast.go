// Package guard contains the XMorph 2.0 front-end: the abstract syntax of
// query guards (Section III of the paper) and a lexer/parser for the
// concrete syntax.
//
// A guard is a pipeline of stages (MORPH, MUTATE, TRANSLATE) composed with
// COMPOSE or "|", optionally wrapped in type-enforcement modifiers
// (CAST-NARROWING, CAST-WIDENING, CAST, TYPE-FILL). Guards are case- and
// whitespace-insensitive.
package guard

import (
	"fmt"
	"strings"
)

// CastMode controls which information-loss verdicts the type checker lets
// through (Section III). The default admits only strongly-typed guards.
type CastMode int

const (
	// CastNone admits only strongly-typed guards (both narrowing and
	// widening in the paper's sense: no data created, no data lost).
	CastNone CastMode = iota
	// CastNarrowing additionally admits narrowing guards (may lose data,
	// creates none).
	CastNarrowing
	// CastWidening additionally admits widening guards (may create data,
	// loses none).
	CastWidening
	// CastWeak admits weakly-typed guards (may both lose and create).
	CastWeak
)

// String names the mode using the concrete syntax keyword.
func (m CastMode) String() string {
	switch m {
	case CastNone:
		return "STRICT"
	case CastNarrowing:
		return "CAST-NARROWING"
	case CastWidening:
		return "CAST-WIDENING"
	case CastWeak:
		return "CAST"
	}
	return fmt.Sprintf("CastMode(%d)", int(m))
}

// StageKind discriminates pipeline stages.
type StageKind int

const (
	// StageMorph builds an output shape from scratch out of the pattern
	// (only the mentioned types appear).
	StageMorph StageKind = iota
	// StageMutate rearranges the entire source shape per the pattern.
	StageMutate
	// StageTranslate renames types.
	StageTranslate
)

func (k StageKind) String() string {
	switch k {
	case StageMorph:
		return "MORPH"
	case StageMutate:
		return "MUTATE"
	case StageTranslate:
		return "TRANSLATE"
	}
	return fmt.Sprintf("StageKind(%d)", int(k))
}

// TermKind discriminates pattern terms.
type TermKind int

const (
	// TermLabel selects the source type(s) matching a label.
	TermLabel TermKind = iota
	// TermChildren is the "*" abbreviation: the children of the enclosing
	// term's type, taken from the source shape.
	TermChildren
	// TermDescendants is the "**" abbreviation: the full source subtree of
	// the enclosing term's type.
	TermDescendants
	// TermDrop removes the types selected by its operand (MUTATE shapes).
	TermDrop
	// TermClone copies the types selected by its operand as fresh types.
	TermClone
	// TermNew introduces a brand new labelled type.
	TermNew
	// TermRestrict filters the operand's root type by its pattern without
	// exposing the pattern in the output.
	TermRestrict
)

func (k TermKind) String() string {
	switch k {
	case TermLabel:
		return "label"
	case TermChildren:
		return "CHILDREN"
	case TermDescendants:
		return "DESCENDANTS"
	case TermDrop:
		return "DROP"
	case TermClone:
		return "CLONE"
	case TermNew:
		return "NEW"
	case TermRestrict:
		return "RESTRICT"
	}
	return fmt.Sprintf("TermKind(%d)", int(k))
}

// Program is a parsed query guard.
type Program struct {
	// Cast is the admitted information-loss level.
	Cast CastMode
	// TypeFill makes unmatched labels manufacture new types instead of
	// raising a type mismatch.
	TypeFill bool
	// Stages is the composition pipeline, applied left to right.
	Stages []*Stage
	// Source is the guard text the program was parsed from.
	Source string
}

// Stage is one pipeline stage.
type Stage struct {
	Kind StageKind
	// Patterns holds the stage's top-level terms (MORPH and MUTATE).
	Patterns []*Term
	// Renames holds the TRANSLATE dictionary.
	Renames []Rename
	// Pos locates the stage keyword in the source.
	Pos int
}

// Rename is one TRANSLATE dictionary entry.
type Rename struct {
	From string
	To   string
}

// Term is a pattern term. Modifier terms (DROP, CLONE, NEW, RESTRICT) wrap
// an operand; every term may carry a bracketed child list.
type Term struct {
	Kind TermKind
	// Label is the selector for TermLabel and the new name for TermNew.
	// Labels may be dotted to disambiguate ("book.author").
	Label string
	// Operand is the wrapped term for DROP, CLONE, and RESTRICT.
	Operand *Term
	// Kids is the bracketed child pattern list.
	Kids []*Term
	// Pos locates the term in the source.
	Pos int
}

// String renders the term back to concrete syntax.
func (t *Term) String() string {
	var b strings.Builder
	t.write(&b)
	return b.String()
}

func (t *Term) write(b *strings.Builder) {
	switch t.Kind {
	case TermLabel:
		b.WriteString(t.Label)
	case TermChildren:
		b.WriteString("*")
	case TermDescendants:
		b.WriteString("**")
	case TermNew:
		b.WriteString("(NEW ")
		b.WriteString(t.Label)
		b.WriteString(")")
	case TermDrop, TermClone, TermRestrict:
		b.WriteString("(")
		b.WriteString(t.Kind.String())
		b.WriteString(" ")
		t.Operand.write(b)
		b.WriteString(")")
	}
	if len(t.Kids) > 0 {
		b.WriteString(" [ ")
		for i, k := range t.Kids {
			if i > 0 {
				b.WriteString(" ")
			}
			k.write(b)
		}
		b.WriteString(" ]")
	}
}

// String renders the program back to concrete syntax.
func (p *Program) String() string {
	var b strings.Builder
	if p.TypeFill {
		b.WriteString("TYPE-FILL ")
	}
	if p.Cast != CastNone {
		b.WriteString(p.Cast.String())
		b.WriteString(" ")
	}
	for i, s := range p.Stages {
		if i > 0 {
			b.WriteString(" | ")
		}
		switch s.Kind {
		case StageTranslate:
			b.WriteString("TRANSLATE ")
			for j, r := range s.Renames {
				if j > 0 {
					b.WriteString(", ")
				}
				b.WriteString(r.From)
				b.WriteString(" -> ")
				b.WriteString(r.To)
			}
		default:
			b.WriteString(s.Kind.String())
			for _, t := range s.Patterns {
				b.WriteString(" ")
				b.WriteString(t.String())
			}
		}
	}
	return b.String()
}
