package engine

import (
	"context"
	"errors"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"xmorph/internal/core"
	"xmorph/internal/plan"
	"xmorph/internal/store"
)

const sampleXML = `<data>
  <book><title>X</title><author><name>V</name></author></book>
  <book><title>Y</title><author><name>U</name></author></book>
</data>`

const sampleGuard = "MORPH author [ name title ]"

func newEngine(t *testing.T) *Engine {
	t.Helper()
	eng := OpenMemory()
	t.Cleanup(func() { eng.Close() })
	return eng
}

func shredSample(t *testing.T, eng *Engine, name string) {
	t.Helper()
	if _, err := eng.Shred(context.Background(), name, strings.NewReader(sampleXML), nil); err != nil {
		t.Fatal(err)
	}
}

func TestEngineRunMatchesCore(t *testing.T) {
	ctx := context.Background()
	eng := newEngine(t)
	shredSample(t, eng, "books")

	res, err := eng.Run(ctx, "books", sampleGuard, RunOpts{})
	if err != nil {
		t.Fatal(err)
	}
	want, err := core.TransformStored(sampleGuard, eng.st, "books", nil)
	if err != nil {
		t.Fatal(err)
	}
	if got, exp := res.Output.XML(false), want.Output.XML(false); got != exp {
		t.Errorf("engine output diverges from core pipeline:\n%s\nvs\n%s", got, exp)
	}
	if got, exp := res.Loss.String(), want.Loss.String(); got != exp {
		t.Errorf("loss report diverges: %q vs %q", got, exp)
	}
}

func TestEngineStreamMatchesRender(t *testing.T) {
	ctx := context.Background()
	eng := newEngine(t)
	shredSample(t, eng, "books")

	rendered, err := eng.Run(ctx, "books", sampleGuard, RunOpts{})
	if err != nil {
		t.Fatal(err)
	}
	var out strings.Builder
	streamed, err := eng.Run(ctx, "books", sampleGuard, RunOpts{StreamTo: &out})
	if err != nil {
		t.Fatal(err)
	}
	if out.String() != rendered.Output.XML(false) {
		t.Errorf("streamed bytes differ from rendered bytes:\n%q\nvs\n%q", out.String(), rendered.Output.XML(false))
	}
	if streamed.Streamed == 0 || streamed.Output != nil {
		t.Errorf("streamed run: nodes=%d output=%v", streamed.Streamed, streamed.Output)
	}
}

func TestGuardCacheHitsAndReshredInvalidation(t *testing.T) {
	ctx := context.Background()
	eng := newEngine(t)
	shredSample(t, eng, "books")

	first, err := eng.Check(ctx, "books", sampleGuard, nil)
	if err != nil {
		t.Fatal(err)
	}
	if hits, misses := eng.CacheStats(); hits != 0 || misses != 1 {
		t.Fatalf("after first check: hits=%d misses=%d", hits, misses)
	}
	res, err := eng.Run(ctx, "books", sampleGuard, RunOpts{})
	if err != nil {
		t.Fatal(err)
	}
	if !res.CacheHit {
		t.Error("second compile of the same guard missed the cache")
	}
	if res.Checked != first {
		t.Error("cache returned a different Checked value")
	}

	// Re-shredding under the same name gets a fresh version: the cached
	// compilation against the old shape must not be served.
	if err := eng.Drop(ctx, "books", nil); err != nil {
		t.Fatal(err)
	}
	reshaped := `<data><book><title>Z</title><isbn>9</isbn><author><name>W</name></author></book></data>`
	if _, err := eng.Shred(ctx, "books", strings.NewReader(reshaped), nil); err != nil {
		t.Fatal(err)
	}
	res2, err := eng.Run(ctx, "books", sampleGuard, RunOpts{})
	if err != nil {
		t.Fatal(err)
	}
	if res2.CacheHit {
		t.Error("compile after re-shred served the stale cached guard")
	}
	if res2.Checked == first {
		t.Error("re-shredded document reused the old compilation")
	}
	if got := res2.Output.XML(false); !strings.Contains(got, "<name>W</name>") {
		t.Errorf("post-reshred output not from the new document: %s", got)
	}
}

func TestEngineSentinelErrors(t *testing.T) {
	ctx := context.Background()
	eng := newEngine(t)
	shredSample(t, eng, "books")

	if _, err := eng.Run(ctx, "missing", sampleGuard, RunOpts{}); !errors.Is(err, ErrNotFound) {
		t.Errorf("run on missing doc: %v, want ErrNotFound", err)
	}
	if _, err := eng.Shred(ctx, "books", strings.NewReader(sampleXML), nil); !errors.Is(err, ErrExists) {
		t.Errorf("double shred: %v, want ErrExists", err)
	}
	if err := eng.Drop(ctx, "missing", nil); !errors.Is(err, ErrNotFound) {
		t.Errorf("drop missing: %v, want ErrNotFound", err)
	}
	if _, err := eng.Shape(ctx, "missing", nil); !errors.Is(err, ErrNotFound) {
		t.Errorf("shape missing: %v, want ErrNotFound", err)
	}
}

func TestEngineHonorsContext(t *testing.T) {
	eng := newEngine(t)
	shredSample(t, eng, "books")

	expired, cancel := context.WithDeadline(context.Background(), time.Now().Add(-time.Second))
	defer cancel()
	if _, err := eng.Run(expired, "books", sampleGuard, RunOpts{}); !errors.Is(err, context.DeadlineExceeded) {
		t.Errorf("run under expired context: %v", err)
	}
	cancelled, stop := context.WithCancel(context.Background())
	stop()
	if _, err := eng.Query(cancelled, "books", sampleGuard, `for $a in doc("books")//author return $a`, QueryOpts{}); !errors.Is(err, context.Canceled) {
		t.Errorf("query under cancelled context: %v", err)
	}
}

func TestEngineQuery(t *testing.T) {
	ctx := context.Background()
	eng := newEngine(t)
	shredSample(t, eng, "books")

	res, err := eng.Query(ctx, "books", sampleGuard,
		`for $a in doc("books")//author where $a/title = "X" return string($a/name)`, QueryOpts{})
	if err != nil {
		t.Fatal(err)
	}
	if strings.TrimSpace(res.Answer) != "V" {
		t.Errorf("answer = %q, want V", res.Answer)
	}
	if res.KeptTypes == 0 || res.TotalTypes < res.KeptTypes {
		t.Errorf("projection stats: kept=%d total=%d", res.KeptTypes, res.TotalTypes)
	}
}

func TestEnginePersistsAcrossOpen(t *testing.T) {
	ctx := context.Background()
	path := filepath.Join(t.TempDir(), "e.db")
	eng, err := Open(path, WithCachePages(64), WithDurability(true))
	if err != nil {
		t.Fatal(err)
	}
	shredSample(t, eng, "books")
	if err := eng.Close(); err != nil {
		t.Fatal(err)
	}

	st, err := store.Open(path, store.WithDurability(true))
	if err != nil {
		t.Fatal(err)
	}
	if got := st.Stats().Recoveries; got != 0 {
		t.Errorf("clean close still replayed the WAL: recoveries=%d", got)
	}
	st.Close()

	reopened, err := Open(path, WithCachePages(64))
	if err != nil {
		t.Fatal(err)
	}
	defer reopened.Close()
	res, err := reopened.Run(ctx, "books", sampleGuard, RunOpts{})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(res.Output.XML(false), "<name>V</name>") {
		t.Errorf("reopened run output: %s", res.Output.XML(false))
	}
	if res.PagesRead == 0 {
		t.Error("cold run read no pages")
	}
}

func TestGuardCacheLRUEviction(t *testing.T) {
	c := newGuardCache(2)
	a, b, d := &Checked{}, &Checked{}, &Checked{}
	streamable := plan.Decision{Streamable: true, Scans: 3}
	c.put(1, 7, "a", a, streamable)
	c.put(1, 7, "b", b, plan.Decision{})
	if got, v := c.get(1, 7, "a"); got != a || v != streamable {
		t.Fatalf("a evicted too early or verdict lost: %+v", v)
	}
	c.put(1, 7, "d", d, plan.Decision{}) // evicts b (least recently used)
	if got, _ := c.get(1, 7, "b"); got != nil {
		t.Error("b survived past capacity")
	}
	ga, _ := c.get(1, 7, "a")
	gd, _ := c.get(1, 7, "d")
	if ga != a || gd != d {
		t.Error("a or d missing after eviction")
	}
	hits, misses := c.stats()
	if hits != 3 || misses != 1 {
		t.Errorf("stats = %d hits, %d misses", hits, misses)
	}
}

func TestOneShotHelpers(t *testing.T) {
	res, err := TransformReader("MORPH title", strings.NewReader(sampleXML), nil)
	if err != nil {
		t.Fatal(err)
	}
	if got := res.Output.XML(false); !strings.Contains(got, "<title>X</title>") {
		t.Errorf("one-shot output: %s", got)
	}
	v := Verify(res.Source, res.Output)
	if v.SrcVertices == 0 {
		t.Error("verify saw an empty source graph")
	}
	tree, err := Explain("MORPH author [ name ]")
	if err != nil || !strings.Contains(tree, "closest") {
		t.Errorf("explain = %q, err %v", tree, err)
	}
	g, err := InferGuard(`for $a in doc("x")/author return $a/name`)
	if err != nil || g != "MORPH author [ name ]" {
		t.Errorf("infer = %q, err %v", g, err)
	}
}
