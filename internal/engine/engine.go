// Package engine is the unified facade over the XMorph pipeline: one
// handle owns the store, guard compilation, the information-loss check,
// and the render path, so every entry point (the xmorph CLI, the xmorphd
// daemon, benchmarks) drives the identical code. The facade threads a
// context.Context and an optional *obs.Span through every stage —
// cancellation is checked at stage boundaries, tracing is free when the
// span is nil — and keeps a compiled-guard cache keyed by (guard text,
// document shred version, shape hash), so repeated queries skip the
// compile phase until the document is re-shredded or an in-place Update
// changes its adorned shape.
package engine

import (
	"context"
	"errors"
	"fmt"
	"io"
	"time"

	"xmorph/internal/core"
	"xmorph/internal/kvstore"
	"xmorph/internal/logical"
	"xmorph/internal/obs"
	"xmorph/internal/plan"
	"xmorph/internal/shape"
	"xmorph/internal/store"
	"xmorph/internal/stream"
	"xmorph/internal/update"
	"xmorph/internal/xmltree"
)

// Re-exported result types: callers of the facade (cmd/xmorph, cmd/xmorphd)
// build against engine alone.
type (
	// Checked is a compiled and loss-checked guard, ready to render.
	Checked = core.Checked
	// ShredInfo summarizes a shredded document.
	ShredInfo = store.ShredInfo
	// UpdateInfo summarizes an in-place document update, including the
	// shape delta the edit script induced.
	UpdateInfo = store.UpdateInfo
	// Shape is a document's adorned shape.
	Shape = shape.Shape
)

// Sentinel errors the service layer maps onto HTTP statuses.
var (
	// ErrNotFound reports an operation against a document the store does
	// not hold.
	ErrNotFound = errors.New("engine: document not found")
	// ErrExists reports a shred of a name that is already shredded.
	ErrExists = errors.New("engine: document already shredded")
	// ErrNotStreamable reports a Run forced onto the streaming executor
	// (ExecStream) for a guard the planner classified store-backed.
	ErrNotStreamable = stream.ErrNotStreamable
)

var (
	metricCacheHits    = obs.Default.Counter("engine_guard_cache_hits_total")
	metricCacheMisses  = obs.Default.Counter("engine_guard_cache_misses_total")
	metricCacheEntries = obs.Default.Gauge("engine_guard_cache_entries")

	// Streaming-executor metrics: runs that took the one-pass path, runs
	// that wanted to stream but fell back to the join-backed renderer,
	// and the nodes the one-pass path emitted.
	metricStreamRuns      = obs.Default.Counter("engine_stream_runs_total")
	metricStreamFallbacks = obs.Default.Counter("engine_stream_fallbacks_total")
	metricStreamNodes     = obs.Default.Counter("engine_stream_nodes_total")

	// Update metrics: edit scripts applied, nodes they touched, and how
	// many changed the document's adorned shape (each of those moves the
	// shape hash and cold-starts the guard cache for that document).
	metricUpdates            = obs.Default.Counter("engine_updates_total")
	metricUpdateNodesIns     = obs.Default.Counter("engine_update_nodes_inserted_total")
	metricUpdateNodesDel     = obs.Default.Counter("engine_update_nodes_deleted_total")
	metricUpdateShapeChanges = obs.Default.Counter("engine_update_shape_changes_total")
)

// Option configures an Engine at Open time; the configuration is
// immutable afterwards.
type Option func(*config)

type config struct {
	storeOpts  []store.Option
	cacheSize  int
	streamExec bool
}

// WithCachePages sets the store's buffer pool size in pages.
func WithCachePages(n int) Option {
	return func(c *config) { c.storeOpts = append(c.storeOpts, store.WithCachePages(n)) }
}

// WithDurability toggles crash-safe commits (write-ahead logging on every
// sync).
func WithDurability(on bool) Option {
	return func(c *config) { c.storeOpts = append(c.storeOpts, store.WithDurability(on)) }
}

// WithUnbatchedShred makes shredding write node-at-a-time instead of in
// sorted batches — the ablation baseline, not for production use.
func WithUnbatchedShred() Option {
	return func(c *config) { c.storeOpts = append(c.storeOpts, store.WithUnbatchedShred()) }
}

// WithKVOptions passes a full kvstore option block through to the store —
// the escape hatch for benchmarks that toggle internals.
func WithKVOptions(o *kvstore.Options) Option {
	return func(c *config) { c.storeOpts = append(c.storeOpts, store.WithKVOptions(o)) }
}

// WithGuardCache sets the compiled-guard cache capacity in entries;
// 0 disables caching. The default is 64.
func WithGuardCache(n int) Option {
	return func(c *config) { c.cacheSize = n }
}

// WithStreamingExec toggles the one-pass streaming executor for guards
// the planner marks streamable (default on). Off, every streamed Run
// uses the join-backed renderer; RunOpts.Exec == ExecStream still forces
// the one-pass path.
func WithStreamingExec(on bool) Option {
	return func(c *config) { c.streamExec = on }
}

// Engine is the unified pipeline handle. It is safe for concurrent use:
// the store serializes writers against readers internally, and cached
// Checked values are immutable after construction.
type Engine struct {
	st         *store.Store
	cache      *guardCache
	streamExec bool
}

// Open opens (or creates) a store file and wraps it in an Engine.
func Open(path string, opts ...Option) (*Engine, error) {
	cfg := newConfig(opts)
	st, err := store.Open(path, cfg.storeOpts...)
	if err != nil {
		return nil, err
	}
	return &Engine{st: st, cache: newGuardCache(cfg.cacheSize), streamExec: cfg.streamExec}, nil
}

// OpenMemory builds an Engine over an in-memory store (tests, examples).
func OpenMemory(opts ...Option) *Engine {
	cfg := newConfig(opts)
	return &Engine{
		st:         store.OpenMemory(cfg.storeOpts...),
		cache:      newGuardCache(cfg.cacheSize),
		streamExec: cfg.streamExec,
	}
}

func newConfig(opts []Option) *config {
	cfg := &config{cacheSize: 64, streamExec: true}
	for _, o := range opts {
		if o != nil {
			o(cfg)
		}
	}
	return cfg
}

// Close syncs and closes the underlying store.
func (e *Engine) Close() error { return e.st.Close() }

// Sync flushes the store's dirty pages (and WAL, under durability).
func (e *Engine) Sync() error { return e.st.Sync() }

// Stats exposes the store's block-I/O and buffer-pool counters.
func (e *Engine) Stats() kvstore.Stats { return e.st.Stats() }

// CacheStats reports compiled-guard cache hits and misses since Open.
func (e *Engine) CacheStats() (hits, misses uint64) { return e.cache.stats() }

// Shred streams an XML document into the store under name. Shredding the
// same name twice fails with ErrExists; Drop first to replace a document
// (the replacement gets a fresh shred version, invalidating every cached
// guard compiled against the old shape).
func (e *Engine) Shred(ctx context.Context, name string, r io.Reader, sp *obs.Span) (*ShredInfo, error) {
	if err := ctxErr(ctx); err != nil {
		return nil, err
	}
	if _, ok, err := e.st.DocVersion(name); err != nil {
		return nil, err
	} else if ok {
		return nil, fmt.Errorf("%w: %q", ErrExists, name)
	}
	return e.st.Shred(name, r, sp)
}

// Docs lists the stored document names, sorted. Like the other facade
// verbs it honors cancellation and, under a non-nil span, opens a
// "list-docs" child annotated with the pages read.
func (e *Engine) Docs(ctx context.Context, sp *obs.Span) ([]string, error) {
	if err := ctxErr(ctx); err != nil {
		return nil, err
	}
	dsp := sp.Child("list-docs")
	before := e.st.Stats()
	names, err := e.st.Documents()
	setPageIO(dsp, before, e.st.Stats())
	dsp.End()
	return names, err
}

// Shape loads a document's adorned shape on one store view. Under a
// non-nil span it opens a "load-shape" child annotated with the pages
// read.
func (e *Engine) Shape(ctx context.Context, name string, sp *obs.Span) (*Shape, error) {
	if err := ctxErr(ctx); err != nil {
		return nil, err
	}
	v := e.st.View()
	defer v.Close()
	if _, ok, err := v.DocVersion(name); err != nil {
		return nil, err
	} else if !ok {
		return nil, fmt.Errorf("%w: %q", ErrNotFound, name)
	}
	ssp := sp.Child("load-shape")
	before := e.st.Stats()
	sh, err := v.Shape(name)
	setPageIO(ssp, before, e.st.Stats())
	ssp.End()
	return sh, err
}

// setPageIO annotates a span with the store page reads and buffer-pool
// hits its phase incurred.
func setPageIO(sp *obs.Span, before, after kvstore.Stats) {
	if sp == nil {
		return
	}
	sp.Set("pages-read", after.BlocksRead-before.BlocksRead)
	sp.Set("page-hits", after.CacheHits-before.CacheHits)
}

// Drop removes a shredded document and every cached guard compiled
// against it (the version key never recurs, so eviction is implicit).
// Under a non-nil span it opens a "drop" child annotated with the pages
// the removal read and wrote.
func (e *Engine) Drop(ctx context.Context, name string, sp *obs.Span) error {
	if err := ctxErr(ctx); err != nil {
		return err
	}
	if _, ok, err := e.st.DocVersion(name); err != nil {
		return err
	} else if !ok {
		return fmt.Errorf("%w: %q", ErrNotFound, name)
	}
	dsp := sp.Child("drop")
	before := e.st.Stats()
	err := e.st.Drop(name)
	after := e.st.Stats()
	setPageIO(dsp, before, after)
	dsp.Set("pages-written", after.BlocksWritten-before.BlocksWritten)
	dsp.End()
	return err
}

// Update applies an edit script (the update language: insert / delete /
// replace over rooted type paths) to the stored document name, in place —
// only the dirty subtrees are re-shredded, inside one group-committed
// batch. The returned UpdateInfo carries the shape delta; a changed shape
// moves the document's shape hash, so cached guards compiled against the
// old shape stop matching, while shape-preserving edits keep them warm.
// Script syntax errors surface as *update.SyntaxError.
func (e *Engine) Update(ctx context.Context, name, script string, sp *obs.Span) (*UpdateInfo, error) {
	if err := ctxErr(ctx); err != nil {
		return nil, err
	}
	ops, err := update.Parse(script)
	if err != nil {
		return nil, err
	}
	if _, ok, err := e.st.DocVersion(name); err != nil {
		return nil, err
	} else if !ok {
		return nil, fmt.Errorf("%w: %q", ErrNotFound, name)
	}
	info, err := e.st.Update(name, ops, sp)
	if err != nil {
		return nil, err
	}
	metricUpdates.Inc()
	metricUpdateNodesIns.Add(int64(info.NodesInserted))
	metricUpdateNodesDel.Add(int64(info.NodesDeleted))
	if info.Delta.Kind != update.Unchanged {
		metricUpdateShapeChanges.Inc()
	}
	return info, nil
}

// Check compiles guardSrc against name's adorned shape and enforces the
// guard's CAST mode — the whole "compile" phase, served from the
// compiled-guard cache when (guard, shred version) was seen before.
//
// Under a non-nil span a cache miss traces load-shape and the compile
// pipeline (parse-guard, typecheck, loss-check); a hit opens a "compile"
// child annotated cached=1.
func (e *Engine) Check(ctx context.Context, name, guardSrc string, sp *obs.Span) (*Checked, error) {
	v := e.st.View()
	defer v.Close()
	checked, _, _, err := e.compileIn(ctx, v, name, guardSrc, sp)
	return checked, err
}

// compileIn runs the compile phase against one store view, so the shred
// version it caches under, the shape hash, and the shape it compiles
// against all come from the same committed epoch (a re-shred or update
// landing mid-compile cannot pair the new version with the old shape, or
// vice versa).
// It also returns the cached streamability verdict, classified once per
// compilation and annotated on the span as "plan".
func (e *Engine) compileIn(ctx context.Context, v *store.View, name, guardSrc string, sp *obs.Span) (*Checked, plan.Decision, bool, error) {
	if err := ctxErr(ctx); err != nil {
		return nil, plan.Decision{}, false, err
	}
	ver, ok, err := v.DocVersion(name)
	if err != nil {
		return nil, plan.Decision{}, false, err
	}
	if !ok {
		return nil, plan.Decision{}, false, fmt.Errorf("%w: %q", ErrNotFound, name)
	}
	// The shape hash is the update-aware half of the cache key: one small
	// point read. Documents shredded before hashes were recorded fall back
	// to hashing the decoded shape (costs the shape load even on a hit —
	// still far cheaper than recompiling the guard).
	hash, hashOK, err := v.ShapeHash(name)
	if err != nil {
		return nil, plan.Decision{}, false, err
	}
	var sh *Shape
	if !hashOK {
		if sh, err = v.Shape(name); err != nil {
			return nil, plan.Decision{}, false, err
		}
		hash = store.HashShape(sh)
	}
	if checked, verdict := e.cache.get(ver, hash, guardSrc); checked != nil {
		csp := sp.Child("compile")
		csp.Set("cached", 1)
		csp.End()
		sp.SetStr("plan", verdict.String())
		return checked, verdict, true, nil
	}

	if sh == nil {
		ssp := sp.Child("load-shape")
		before := e.st.Stats()
		sh, err = v.Shape(name)
		setPageIO(ssp, before, e.st.Stats())
		ssp.End()
		if err != nil {
			return nil, plan.Decision{}, false, err
		}
	}
	checked, err := core.Check(guardSrc, sh, sp)
	if err != nil {
		return nil, plan.Decision{}, false, err
	}
	verdict := plan.Classify(checked.Plan.ComposedTarget())
	sp.SetStr("plan", verdict.String())
	e.cache.put(ver, hash, guardSrc, checked, verdict)
	return checked, verdict, false, nil
}

// ExecMode selects the execution strategy for a streamed Run.
type ExecMode int

const (
	// ExecAuto (the default) picks the one-pass streaming executor when
	// the planner marks the guard streamable and the engine has
	// streaming enabled, falling back to the join-backed renderer.
	ExecAuto ExecMode = iota
	// ExecStream forces the one-pass executor; Run fails with
	// ErrNotStreamable for store-backed guards.
	ExecStream
	// ExecStore forces the join-backed path (bench comparisons).
	ExecStore
)

// RunOpts tunes a single Run call.
type RunOpts struct {
	// Span receives the pipeline trace; nil is untraced and free.
	Span *obs.Span
	// StreamTo, when non-nil, streams the rendered XML into the writer
	// without materializing the output tree; RunResult.Output stays nil
	// and Streamed counts the nodes written.
	StreamTo io.Writer
	// Exec selects the streamed execution strategy (needs StreamTo).
	Exec ExecMode
}

// RunResult is a completed transformation with its provenance.
type RunResult struct {
	*Checked
	// Output is the materialized result tree (nil when streamed).
	Output *xmltree.Document
	// Streamed counts elements and attributes written to StreamTo.
	Streamed int
	// RenderTime covers the render (or stream) phase only.
	RenderTime time.Duration
	// CacheHit reports whether the compile phase was served from the
	// compiled-guard cache.
	CacheHit bool
	// PagesRead counts store pages read across the whole call.
	PagesRead int64
	// Plan is the streamability verdict cached with the compiled guard.
	Plan plan.Decision
	// StreamExec reports that the one-pass streaming executor produced
	// the output (constant memory, no join graphs).
	StreamExec bool
}

// Run compiles guardSrc against the stored document name (cached) and
// renders the transformation — the full Figure 8 pipeline over shredded
// data. Cancellation is honored between stages; the span in opts traces
// load-shape, compile, load-doc, and render/stream children, each
// annotated with the pages it read.
func (e *Engine) Run(ctx context.Context, name, guardSrc string, opts RunOpts) (*RunResult, error) {
	sp := opts.Span
	pagesBefore := e.st.Stats().BlocksRead

	// One view for the whole request: the compile phase, the document's
	// lazy node loads, and the render all answer from a single committed
	// epoch, and never wait behind a concurrent shred.
	v := e.st.View()
	defer v.Close()

	if opts.Exec == ExecStream && opts.StreamTo == nil {
		return nil, errors.New("engine: ExecStream requires RunOpts.StreamTo")
	}
	checked, verdict, hit, err := e.compileIn(ctx, v, name, guardSrc, sp)
	if err != nil {
		return nil, err
	}
	if err := ctxErr(ctx); err != nil {
		return nil, err
	}

	dsp := sp.Child("load-doc")
	before := e.st.Stats()
	doc, err := v.Doc(name)
	setPageIO(dsp, before, e.st.Stats())
	dsp.End()
	if err != nil {
		return nil, err
	}
	if err := ctxErr(ctx); err != nil {
		return nil, err
	}

	res := &RunResult{Checked: checked, CacheHit: hit, Plan: verdict}
	start := time.Now()
	if opts.StreamTo != nil {
		useStream := false
		switch opts.Exec {
		case ExecStream:
			if !verdict.Streamable {
				return nil, fmt.Errorf("%w: %s", ErrNotStreamable, verdict.Reason)
			}
			useStream = true
		case ExecStore:
		default:
			useStream = e.streamExec && verdict.Streamable
			if e.streamExec && !verdict.Streamable {
				metricStreamFallbacks.Inc()
			}
		}
		if useStream {
			ssp := sp.Child("stream")
			ssp.Set("streamed", 1)
			before = e.st.Stats()
			n, err := stream.Execute(stream.FromDoc(doc), checked.Plan.ComposedTarget(), opts.StreamTo, ssp)
			setPageIO(ssp, before, e.st.Stats())
			ssp.End()
			if err != nil {
				return nil, err
			}
			res.Streamed = n
			res.StreamExec = true
			sp.Set("streamed", 1)
			metricStreamRuns.Inc()
			metricStreamNodes.Add(int64(n))
		} else {
			n, err := checked.Stream(doc, opts.StreamTo, sp)
			if err != nil {
				return nil, err
			}
			res.Streamed = n
		}
	} else {
		rsp := sp.Child("render")
		before = e.st.Stats()
		out, err := checked.RenderOn(doc, rsp)
		setPageIO(rsp, before, e.st.Stats())
		rsp.End()
		if err != nil {
			return nil, err
		}
		res.Output = out.Output
	}
	res.RenderTime = time.Since(start)
	res.PagesRead = e.st.Stats().BlocksRead - pagesBefore
	return res, nil
}

// QueryOpts tunes a single Query call, mirroring RunOpts.
type QueryOpts struct {
	// Span receives the pipeline trace; nil is untraced and free.
	Span *obs.Span
	// Exec is an execution hint: ExecStream demands a guard the planner
	// classifies streamable and fails with ErrNotStreamable otherwise
	// (the projection evaluation itself always runs the join-backed
	// path — the hint is a guard-shape assertion, not a code path).
	Exec ExecMode
}

// QueryResult is a guarded query's answer plus the same provenance a Run
// reports: the projection stats from the logical evaluator, the compile
// cache outcome, the page I/O, and the planner's verdict.
type QueryResult struct {
	*logical.Result
	// CacheHit reports whether the compile phase was served from the
	// compiled-guard cache.
	CacheHit bool
	// PagesRead counts store pages read across the whole call.
	PagesRead int64
	// Plan is the streamability verdict cached with the compiled guard.
	Plan plan.Decision
	// Exec names the execution path that produced the answer (always
	// "store": projections render through the join-backed path).
	Exec string
}

// Query evaluates an XQuery query over guardSrc's output for the stored
// document name, rendering only the projection the query's paths can
// reach (the paper's architecture #3). The compile phase is served from
// the shape-aware guard cache; the span in opts traces compile,
// load-doc, and the prune/render/query pipeline.
func (e *Engine) Query(ctx context.Context, name, guardSrc, query string, opts QueryOpts) (*QueryResult, error) {
	sp := opts.Span
	pagesBefore := e.st.Stats().BlocksRead
	// One view per query: shape, document, and evaluation all read the
	// same committed epoch, without waiting behind concurrent shreds.
	v := e.st.View()
	defer v.Close()
	checked, verdict, hit, err := e.compileIn(ctx, v, name, guardSrc, sp)
	if err != nil {
		return nil, err
	}
	if opts.Exec == ExecStream && !verdict.Streamable {
		return nil, fmt.Errorf("%w: %s", ErrNotStreamable, verdict.Reason)
	}
	if err := ctxErr(ctx); err != nil {
		return nil, err
	}
	dsp := sp.Child("load-doc")
	before := e.st.Stats()
	doc, err := v.Doc(name)
	setPageIO(dsp, before, e.st.Stats())
	dsp.End()
	if err != nil {
		return nil, err
	}
	if err := ctxErr(ctx); err != nil {
		return nil, err
	}
	res, err := logical.EvaluateChecked(query, checked, name, doc, sp)
	if err != nil {
		return nil, err
	}
	return &QueryResult{
		Result:    res,
		CacheHit:  hit,
		PagesRead: e.st.Stats().BlocksRead - pagesBefore,
		Plan:      verdict,
		Exec:      "store",
	}, nil
}

// QueryWithSpan is the pre-QueryOpts form.
//
// Deprecated: use Query with QueryOpts{Span: sp}.
func (e *Engine) QueryWithSpan(ctx context.Context, name, guardSrc, query string, sp *obs.Span) (*QueryResult, error) {
	return e.Query(ctx, name, guardSrc, query, QueryOpts{Span: sp})
}

// ctxErr reports a cancelled or expired context; a nil context never
// cancels.
func ctxErr(ctx context.Context) error {
	if ctx == nil {
		return nil
	}
	return ctx.Err()
}
