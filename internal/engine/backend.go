package engine

import (
	"context"
	"io"

	"xmorph/internal/kvstore"
	"xmorph/internal/obs"
	"xmorph/internal/store"
)

// Backend is the verb surface the HTTP server (and any other front end)
// drives: the full pipeline vocabulary with context and tracing threaded
// through. A single Engine implements it directly; internal/cluster's
// Cluster implements the same surface over N sharded engines, so xmorphd
// serves either from identical handler code.
type Backend interface {
	// Shred streams an XML document into the backend under name.
	Shred(ctx context.Context, name string, r io.Reader, sp *obs.Span) (*ShredInfo, error)
	// Docs lists the stored document names, sorted.
	Docs(ctx context.Context, sp *obs.Span) ([]string, error)
	// Shape loads a document's adorned shape.
	Shape(ctx context.Context, name string, sp *obs.Span) (*Shape, error)
	// Drop removes a shredded document.
	Drop(ctx context.Context, name string, sp *obs.Span) error
	// Update applies an edit script to a stored document in place,
	// re-shredding only the dirty subtrees.
	Update(ctx context.Context, name, script string, sp *obs.Span) (*UpdateInfo, error)
	// Check compiles and loss-checks a guard against a document's shape.
	Check(ctx context.Context, name, guardSrc string, sp *obs.Span) (*Checked, error)
	// Run renders a guarded transformation (optionally streaming).
	Run(ctx context.Context, name, guardSrc string, opts RunOpts) (*RunResult, error)
	// Query evaluates a guarded XQuery query over the transformation.
	Query(ctx context.Context, name, guardSrc, query string, opts QueryOpts) (*QueryResult, error)
	// Stats reports storage counters (aggregated across shards for a
	// cluster). Refreshing backend-specific gauges may piggyback on it.
	Stats() kvstore.Stats
	// Sync flushes pending commits.
	Sync() error
	// Close releases the backend.
	Close() error
}

// Engine satisfies Backend.
var _ Backend = (*Engine)(nil)

// New wraps an already-open store in an Engine. The cluster layer uses
// it to front stores it manages itself (shard leaders it can crash and
// reopen, replica stores fed by replication); store-level options in
// opts are ignored — the store is configured.
func New(st *store.Store, opts ...Option) *Engine {
	cfg := newConfig(opts)
	return &Engine{st: st, cache: newGuardCache(cfg.cacheSize), streamExec: cfg.streamExec}
}

// Store exposes the engine's underlying store — the cluster layer needs
// it for replication feeds and epoch floors.
func (e *Engine) Store() *store.Store { return e.st }
