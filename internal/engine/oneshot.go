package engine

import (
	"io"

	"xmorph/internal/algebra"
	"xmorph/internal/closest"
	"xmorph/internal/core"
	"xmorph/internal/guard"
	"xmorph/internal/infer"
	"xmorph/internal/obs"
	"xmorph/internal/xmltree"
)

// The store-less entry points: one-shot transformations over XML read
// directly from a file or stream, guard inspection, and guard inference.
// They live on the engine facade so its callers need no other pipeline
// package.

// FileResult is a one-shot transformation's outcome together with the
// parsed source document (kept for empirical verification).
type FileResult struct {
	// Source is the parsed input document.
	Source *xmltree.Document
	// Checked is the compiled guard; Output the materialized result.
	*Checked
	Output *xmltree.Document
}

// TransformReader parses an XML document from r and runs guardSrc over it
// — the CLI's run-file path (the paper's architecture #1 without a
// store). The span traces parse-xml (annotated with the node count),
// shape extraction, compile, and render.
func TransformReader(guardSrc string, r io.Reader, sp *obs.Span) (*FileResult, error) {
	psp := sp.Child("parse-xml")
	doc, err := xmltree.Parse(r)
	if err != nil {
		psp.End()
		return nil, err
	}
	psp.Set("nodes", int64(doc.Size()))
	psp.End()
	res, err := core.Transform(guardSrc, doc, sp)
	if err != nil {
		return nil, err
	}
	return &FileResult{Source: doc, Checked: res.Checked, Output: res.Output}, nil
}

// Verify empirically compares the closest graphs of a source document and
// a rendered output and quantifies the loss (Definition 5 run literally
// over the instances). It materializes both graphs: use it on documents,
// not corpora.
func Verify(src, out *xmltree.Document) closest.Result { return core.Verify(src, out) }

// Explain parses guardSrc and renders its algebra tree (Section VI's
// operator composition) without touching any data.
func Explain(guardSrc string) (string, error) {
	prog, err := guard.Parse(guardSrc)
	if err != nil {
		return "", err
	}
	return algebra.FromProgram(prog).String(), nil
}

// InferGuard derives the MORPH guard an XQuery query needs from the
// query's path expressions (Section VIII's guard inference).
func InferGuard(query string) (string, error) { return infer.FromQuery(query) }
