package engine

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"strings"
	"testing"
	"time"
)

// queryWithID posts a query with an X-Request-Id header and returns the
// response.
func queryWithID(t *testing.T, base, id, extra string) *http.Response {
	t.Helper()
	body := fmt.Sprintf(`{"doc":"books","guard":%q}`, sampleGuard)
	req, err := http.NewRequest(http.MethodPost, base+"/v1/query"+extra, strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	if id != "" {
		req.Header.Set("X-Request-Id", id)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	return resp
}

type tracesPage struct {
	SlowThresholdMs float64 `json:"slow_threshold_ms"`
	Recent          []struct {
		ID   string  `json:"id"`
		Name string  `json:"name"`
		Slow bool    `json:"slow"`
		Dur  float64 `json:"dur_ms"`
	} `json:"recent"`
	Slow []struct {
		ID string `json:"id"`
	} `json:"slow"`
}

func getTraces(t *testing.T, base string) tracesPage {
	t.Helper()
	resp, err := http.Get(base + "/debug/traces")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var page tracesPage
	if err := json.NewDecoder(resp.Body).Decode(&page); err != nil {
		t.Fatal(err)
	}
	return page
}

func TestDebugTracesRingAndSlowRetention(t *testing.T) {
	_, _, ts := newTestServer(t, ServerConfig{
		TraceRingSize:      3,
		SlowRingSize:       2,
		SlowQueryThreshold: time.Nanosecond, // everything is slow
	})
	shredHTTP(t, ts.URL, "books")

	for i := 0; i < 5; i++ {
		resp := queryWithID(t, ts.URL, fmt.Sprintf("q-%d", i), "")
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if got := resp.Header.Get("X-Request-Id"); got != fmt.Sprintf("q-%d", i) {
			t.Errorf("X-Request-Id echoed as %q", got)
		}
	}

	page := getTraces(t, ts.URL)
	// Ring capacity 3, newest first: q-4, q-3, q-2 (older queries and the
	// shred evicted).
	if len(page.Recent) != 3 {
		t.Fatalf("recent len = %d, want 3", len(page.Recent))
	}
	for i, want := range []string{"q-4", "q-3", "q-2"} {
		if page.Recent[i].ID != want {
			t.Errorf("recent[%d] = %q, want %q", i, page.Recent[i].ID, want)
		}
		if !page.Recent[i].Slow {
			t.Errorf("recent[%d] not marked slow under 1ns threshold", i)
		}
	}
	// Slow buffer capacity 2, newest first, retained independently.
	if len(page.Slow) != 2 || page.Slow[0].ID != "q-4" || page.Slow[1].ID != "q-3" {
		t.Errorf("slow buffer = %+v, want [q-4 q-3]", page.Slow)
	}

	// Fetch one retained trace by ID: full span tree.
	resp, err := http.Get(ts.URL + "/debug/traces/q-3")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("trace fetch status %d: %s", resp.StatusCode, body)
	}
	for _, want := range []string{`"id":"q-3"`, `"name":"query"`, `"load-doc"`, `"stream"`, `"pages-read"`} {
		if !strings.Contains(string(body), want) {
			t.Errorf("trace body missing %s:\n%s", want, body)
		}
	}

	// Unknown and evicted IDs 404.
	for _, id := range []string{"nope", "q-0"} {
		resp, err := http.Get(ts.URL + "/debug/traces/" + id)
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusNotFound {
			t.Errorf("trace %q status = %d, want 404", id, resp.StatusCode)
		}
	}
}

func TestQueryExplain(t *testing.T) {
	_, _, ts := newTestServer(t, ServerConfig{})
	shredHTTP(t, ts.URL, "books")

	resp := queryWithID(t, ts.URL, "explain-1", "?explain=1")
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("explain status %d", resp.StatusCode)
	}
	var qr struct {
		XML     string          `json:"xml"`
		Verdict string          `json:"verdict"`
		TraceID string          `json:"trace_id"`
		Trace   json.RawMessage `json:"trace"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&qr); err != nil {
		t.Fatal(err)
	}
	if qr.XML == "" || qr.Verdict == "" {
		t.Error("explain dropped the normal response fields")
	}
	if qr.TraceID != "explain-1" {
		t.Errorf("trace_id = %q, want explain-1", qr.TraceID)
	}
	tree := string(qr.Trace)
	// The span tree carries per-stage durations, page I/O, and the loss
	// verdict (on the compile pipeline's loss-check span).
	for _, want := range []string{`"load-shape"`, `"compile"`, `"stream"`, `"dur_ns"`, `"pages-read"`, `"page-hits"`, `"verdict"`} {
		if !strings.Contains(tree, want) {
			t.Errorf("explain trace missing %s:\n%s", want, tree)
		}
	}

	// Without explain, no trace in the payload.
	resp2 := queryWithID(t, ts.URL, "plain-1", "")
	defer resp2.Body.Close()
	var plain struct {
		Trace json.RawMessage `json:"trace"`
	}
	if err := json.NewDecoder(resp2.Body).Decode(&plain); err != nil {
		t.Fatal(err)
	}
	if len(plain.Trace) != 0 {
		t.Error("trace embedded without ?explain=1")
	}
}

func TestTraceSamplingDisabled(t *testing.T) {
	_, _, ts := newTestServer(t, ServerConfig{TraceSample: -1})
	shredHTTP(t, ts.URL, "books")
	resp := queryWithID(t, ts.URL, "q-1", "")
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if got := resp.Header.Get("X-Request-Id"); got != "" {
		t.Errorf("untraced response carries X-Request-Id %q", got)
	}
	page := getTraces(t, ts.URL)
	if len(page.Recent) != 0 || len(page.Slow) != 0 {
		t.Errorf("tracing disabled but ring holds %d recent / %d slow", len(page.Recent), len(page.Slow))
	}
}

func TestTraceSamplingOneInN(t *testing.T) {
	_, _, ts := newTestServer(t, ServerConfig{TraceSample: 4})
	shredHTTP(t, ts.URL, "books")
	for i := 0; i < 8; i++ {
		resp := queryWithID(t, ts.URL, fmt.Sprintf("q-%d", i), "")
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
	}
	page := getTraces(t, ts.URL)
	// 9 API requests (shred + 8 queries) at 1-in-4: expect 2 retained.
	if len(page.Recent) != 2 {
		t.Errorf("sampled traces = %d, want 2 of 9 requests", len(page.Recent))
	}
}

// TestAccessLogGolden pins the access-log line's shape: field order,
// names, and every value that is stable across runs (durations and page
// counts are zeroed by the handler options, as a deployment wanting
// stable logs would do with ReplaceAttr).
func TestAccessLogGolden(t *testing.T) {
	var buf bytes.Buffer
	logger := slog.New(slog.NewJSONHandler(&buf, &slog.HandlerOptions{
		ReplaceAttr: func(groups []string, a slog.Attr) slog.Attr {
			switch a.Key {
			case slog.TimeKey:
				return slog.Attr{}
			case "dur_ms", "pages_read", "page_hits":
				return slog.Int64(a.Key, 0)
			}
			return a
		},
	}))
	_, _, ts := newTestServer(t, ServerConfig{AccessLog: logger})
	shredHTTP(t, ts.URL, "books")

	buf.Reset()
	resp := queryWithID(t, ts.URL, "golden-1", "")
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()

	got := strings.TrimSpace(buf.String())
	want := `{"level":"INFO","msg":"request",` +
		`"method":"POST","route":"query","path":"/v1/query","status":200,"dur_ms":0,` +
		`"trace_id":"golden-1","pages_read":0,"page_hits":0,"cache_hit":false,"slow":false}`
	if got != want {
		t.Errorf("access-log line:\n%s\nwant:\n%s", got, want)
	}
}
