package engine

import (
	"context"
	"errors"
	"strings"
	"testing"

	"xmorph/internal/obs"
)

// streamableGuard is pure descendant projection: every join is down-axis,
// so the planner marks it streamable.
const streamableGuard = "MORPH book [ title author [ name ] ]"

// TestEngineStreamExecAuto: with a streamable guard and a StreamTo sink,
// the engine auto-picks the one-pass executor and its bytes equal the
// materialized rendering.
func TestEngineStreamExecAuto(t *testing.T) {
	ctx := context.Background()
	eng := newEngine(t)
	shredSample(t, eng, "books")

	rendered, err := eng.Run(ctx, "books", streamableGuard, RunOpts{})
	if err != nil {
		t.Fatal(err)
	}
	tr := obs.New("run")
	sp := tr.Root()
	var out strings.Builder
	res, err := eng.Run(ctx, "books", streamableGuard, RunOpts{Span: sp, StreamTo: &out})
	tr.Finish()
	if err != nil {
		t.Fatal(err)
	}
	if !res.StreamExec {
		t.Fatalf("streamable guard did not take the one-pass path (plan: %s)", res.Plan)
	}
	if !res.Plan.Streamable || res.Plan.Scans == 0 {
		t.Errorf("plan verdict = %+v, want streamable with scans", res.Plan)
	}
	if out.String() != rendered.Output.XML(false) {
		t.Errorf("one-pass bytes differ from rendered:\n%q\nvs\n%q", out.String(), rendered.Output.XML(false))
	}
	if res.Streamed != rendered.Output.Size() {
		t.Errorf("streamed %d nodes, tree has %d", res.Streamed, rendered.Output.Size())
	}
	if v, ok := sp.Attr("streamed"); !ok || v != "1" {
		t.Errorf("streamed attr = %q, %v", v, ok)
	}
	if v, ok := sp.Attr("plan"); !ok || !strings.Contains(v, "streamable") {
		t.Errorf("plan attr = %q, %v", v, ok)
	}
}

// TestEngineStreamExecFallback: a store-backed guard streamed in auto mode
// falls back to the join-backed streamer with identical bytes.
func TestEngineStreamExecFallback(t *testing.T) {
	ctx := context.Background()
	eng := newEngine(t)
	shredSample(t, eng, "books")

	rendered, err := eng.Run(ctx, "books", sampleGuard, RunOpts{})
	if err != nil {
		t.Fatal(err)
	}
	var out strings.Builder
	res, err := eng.Run(ctx, "books", sampleGuard, RunOpts{StreamTo: &out})
	if err != nil {
		t.Fatal(err)
	}
	if res.StreamExec {
		t.Error("cross-axis guard took the one-pass path")
	}
	if res.Plan.Streamable || res.Plan.Reason == "" {
		t.Errorf("plan verdict = %+v, want store-backed with reason", res.Plan)
	}
	if out.String() != rendered.Output.XML(false) {
		t.Errorf("fallback bytes differ from rendered")
	}
}

// TestEngineExecStreamForced: ExecStream demands the one-pass executor —
// store-backed guards fail with ErrNotStreamable, and a missing sink is an
// immediate error.
func TestEngineExecStreamForced(t *testing.T) {
	ctx := context.Background()
	eng := newEngine(t)
	shredSample(t, eng, "books")

	var out strings.Builder
	if _, err := eng.Run(ctx, "books", sampleGuard, RunOpts{StreamTo: &out, Exec: ExecStream}); !errors.Is(err, ErrNotStreamable) {
		t.Errorf("forced stream on store-backed guard: err = %v, want ErrNotStreamable", err)
	}
	if _, err := eng.Run(ctx, "books", streamableGuard, RunOpts{Exec: ExecStream}); err == nil {
		t.Error("ExecStream without StreamTo should fail")
	}
	res, err := eng.Run(ctx, "books", streamableGuard, RunOpts{StreamTo: &out, Exec: ExecStream})
	if err != nil {
		t.Fatal(err)
	}
	if !res.StreamExec {
		t.Error("forced stream did not mark StreamExec")
	}
}

// TestEngineExecStoreForced: ExecStore pins the join-backed path even for
// streamable guards (the bench's comparison baseline).
func TestEngineExecStoreForced(t *testing.T) {
	ctx := context.Background()
	eng := newEngine(t)
	shredSample(t, eng, "books")

	var auto, forced strings.Builder
	if _, err := eng.Run(ctx, "books", streamableGuard, RunOpts{StreamTo: &auto}); err != nil {
		t.Fatal(err)
	}
	res, err := eng.Run(ctx, "books", streamableGuard, RunOpts{StreamTo: &forced, Exec: ExecStore})
	if err != nil {
		t.Fatal(err)
	}
	if res.StreamExec {
		t.Error("ExecStore still took the one-pass path")
	}
	if !res.Plan.Streamable {
		t.Error("verdict should still report streamable")
	}
	if auto.String() != forced.String() {
		t.Errorf("paths disagree:\n%q\nvs\n%q", auto.String(), forced.String())
	}
}

// TestEngineStreamingExecDisabled: WithStreamingExec(false) turns auto
// mode off engine-wide; an explicit ExecStream still forces it.
func TestEngineStreamingExecDisabled(t *testing.T) {
	ctx := context.Background()
	eng := OpenMemory(WithStreamingExec(false))
	defer eng.Close()
	shredSample(t, eng, "books")

	var out strings.Builder
	res, err := eng.Run(ctx, "books", streamableGuard, RunOpts{StreamTo: &out})
	if err != nil {
		t.Fatal(err)
	}
	if res.StreamExec {
		t.Error("auto mode streamed with the executor disabled")
	}
	out.Reset()
	res, err = eng.Run(ctx, "books", streamableGuard, RunOpts{StreamTo: &out, Exec: ExecStream})
	if err != nil {
		t.Fatal(err)
	}
	if !res.StreamExec {
		t.Error("explicit ExecStream should override the engine toggle")
	}
}

// TestEngineDocsCtxAndSpan: Docs honors cancellation and annotates a
// list-docs child span — the same contract as every other facade verb.
func TestEngineDocsCtxAndSpan(t *testing.T) {
	eng := newEngine(t)
	shredSample(t, eng, "books")

	tr := obs.New("docs")
	names, err := eng.Docs(context.Background(), tr.Root())
	tr.Finish()
	if err != nil {
		t.Fatal(err)
	}
	if len(names) != 1 || names[0] != "books" {
		t.Errorf("docs = %v", names)
	}
	if !strings.Contains(tr.Text(), "list-docs") {
		t.Errorf("trace missing list-docs child:\n%s", tr.Text())
	}

	canceled, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := eng.Docs(canceled, nil); !errors.Is(err, context.Canceled) {
		t.Errorf("canceled Docs: err = %v", err)
	}
}
