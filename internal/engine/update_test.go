package engine

import (
	"context"
	"errors"
	"strings"
	"testing"

	"xmorph/internal/update"
	"xmorph/internal/xmltree"
)

// reconstruct rebuilds the stored document's full tree (test oracle).
func reconstruct(t *testing.T, eng *Engine, name string) *xmltree.Document {
	t.Helper()
	v := eng.st.View()
	defer v.Close()
	d, err := v.Doc(name)
	if err != nil {
		t.Fatal(err)
	}
	doc, err := d.Reconstruct()
	if err != nil {
		t.Fatal(err)
	}
	return doc
}

func TestEngineUpdate(t *testing.T) {
	ctx := context.Background()
	eng := newEngine(t)
	shredSample(t, eng, "books")

	info, err := eng.Update(ctx, "books", `insert <isbn>9</isbn> into data.book`, nil)
	if err != nil {
		t.Fatal(err)
	}
	if info.Ops != 1 || info.NodesInserted != 2 {
		t.Errorf("info = %+v, want 1 op, 2 nodes inserted", info)
	}
	if info.Delta.Kind != update.Widened {
		t.Errorf("delta kind = %v, want Widened", info.Delta.Kind)
	}
	res, err := eng.Run(ctx, "books", "MORPH book [ isbn ]", RunOpts{})
	if err != nil {
		t.Fatal(err)
	}
	if got := res.Output.XML(false); strings.Count(got, "<isbn>9</isbn>") != 2 {
		t.Errorf("update not visible to Run: %s", got)
	}

	// Error surface: missing document, script syntax errors.
	if _, err := eng.Update(ctx, "missing", `delete a.b`, nil); !errors.Is(err, ErrNotFound) {
		t.Errorf("update missing doc: %v, want ErrNotFound", err)
	}
	var syn *update.SyntaxError
	if _, err := eng.Update(ctx, "books", `mangle data.book`, nil); !errors.As(err, &syn) {
		t.Errorf("bad script: %v, want *update.SyntaxError", err)
	}
	cancelled, stop := context.WithCancel(context.Background())
	stop()
	if _, err := eng.Update(cancelled, "books", `delete data.book`, nil); !errors.Is(err, context.Canceled) {
		t.Errorf("update under cancelled context: %v", err)
	}
}

// TestGuardCacheAcrossUpdates is the shape-aware invalidation contract:
// a shape-preserving update keeps compiled guards warm (same version,
// same shape hash), a shape-changing update cold-starts them, and the
// stale compilation is never served for the new shape.
func TestGuardCacheAcrossUpdates(t *testing.T) {
	ctx := context.Background()
	eng := newEngine(t)
	shredSample(t, eng, "books")

	if _, err := eng.Check(ctx, "books", sampleGuard, nil); err != nil {
		t.Fatal(err)
	}

	// Replacing a book with an identically-shaped one cannot be observed
	// by the type system: the cache must stay warm.
	same := `replace data.book with <book><title>Z</title><author><name>W</name></author></book>`
	info, err := eng.Update(ctx, "books", same, nil)
	if err != nil {
		t.Fatal(err)
	}
	if info.Delta.Kind != update.Unchanged {
		t.Fatalf("shape-preserving update delta = %v", info.Delta)
	}
	res, err := eng.Run(ctx, "books", sampleGuard, RunOpts{})
	if err != nil {
		t.Fatal(err)
	}
	if !res.CacheHit {
		t.Error("shape-preserving update evicted the compiled guard")
	}
	if !strings.Contains(res.Output.XML(false), "<name>W</name>") {
		t.Errorf("run after update misses new content: %s", res.Output.XML(false))
	}

	// Deleting every title narrows the shape: the hash moves and the
	// cached compilation (whose plan still mentions title) stops matching.
	info, err = eng.Update(ctx, "books", `delete data.book.title`, nil)
	if err != nil {
		t.Fatal(err)
	}
	if info.Delta.Kind == update.Unchanged {
		t.Fatalf("delete title delta = %v, want a shape change", info.Delta)
	}
	res, err = eng.Run(ctx, "books", "MORPH author [ name ]", RunOpts{})
	if err != nil {
		t.Fatal(err)
	}
	if res.CacheHit {
		t.Error("shape-changing update left a stale compilation serveable")
	}
}

// TestEngineUpdateDifferential: after each edit script, the updated
// engine's Run and Query output must be byte-identical to a fresh engine
// shredded from the updated document's serialization (drop + re-shred
// oracle), and the projection stats must match.
func TestEngineUpdateDifferential(t *testing.T) {
	ctx := context.Background()
	guard := "MORPH author [ name title ]"
	query := `for $a in doc("d")//author return string($a/name)`
	scripts := []string{
		`insert <author><name>N</name></author> into data.book`,
		`insert <book><title>T2</title><author><name>M</name></author></book> before data.book`,
		`insert <note>n</note> into data.book`,
		`replace data.book.title with <title>R</title>`,
		`insert <extra>e</extra> after data.book.title ; delete data.book.extra`,
		`delete data.book.note`,
	}
	eng := newEngine(t)
	shredSample(t, eng, "d")
	for i, script := range scripts {
		if _, err := eng.Update(ctx, "d", script, nil); err != nil {
			t.Fatalf("script %d %q: %v", i, script, err)
		}
		oracle := newEngine(t)
		cur := reconstruct(t, eng, "d")
		if _, err := oracle.Shred(ctx, "d", strings.NewReader(cur.XML(false)), nil); err != nil {
			t.Fatalf("script %d: oracle shred: %v", i, err)
		}
		got, err := eng.Run(ctx, "d", guard, RunOpts{})
		if err != nil {
			t.Fatalf("script %d: updated run: %v", i, err)
		}
		want, err := oracle.Run(ctx, "d", guard, RunOpts{})
		if err != nil {
			t.Fatalf("script %d: oracle run: %v", i, err)
		}
		if g, w := got.Output.XML(false), want.Output.XML(false); g != w {
			t.Errorf("script %d: Run diverges from re-shred:\n%s\nvs\n%s", i, g, w)
		}
		gq, err := eng.Query(ctx, "d", guard, query, QueryOpts{})
		if err != nil {
			t.Fatalf("script %d: updated query: %v", i, err)
		}
		wq, err := oracle.Query(ctx, "d", guard, query, QueryOpts{})
		if err != nil {
			t.Fatalf("script %d: oracle query: %v", i, err)
		}
		if gq.Answer != wq.Answer {
			t.Errorf("script %d: Query diverges: %q vs %q", i, gq.Answer, wq.Answer)
		}
		if gq.KeptTypes != wq.KeptTypes || gq.TotalTypes != wq.TotalTypes {
			t.Errorf("script %d: projection stats diverge: %d/%d vs %d/%d",
				i, gq.KeptTypes, gq.TotalTypes, wq.KeptTypes, wq.TotalTypes)
		}
		gs, err := eng.Shape(ctx, "d", nil)
		if err != nil {
			t.Fatal(err)
		}
		ws, err := oracle.Shape(ctx, "d", nil)
		if err != nil {
			t.Fatal(err)
		}
		if gs.String() != ws.String() {
			t.Errorf("script %d: shape diverges:\n%s\nvs\n%s", i, gs, ws)
		}
	}
}

// TestQueryOptsExecHint: ExecStream is a streamability assertion — it
// fails with ErrNotStreamable when the planner classifies the guard
// store-backed, and passes through when streamable. The QueryResult
// carries the Run-style provenance either way.
func TestQueryOptsExecHint(t *testing.T) {
	ctx := context.Background()
	eng := newEngine(t)
	shredSample(t, eng, "books")

	q := `for $t in doc("books")//title return string($t)`
	res, err := eng.Query(ctx, "books", "MORPH book [ title ]", q, QueryOpts{Exec: ExecStream})
	if err != nil {
		t.Fatalf("streamable guard under ExecStream: %v", err)
	}
	if !res.Plan.Streamable || res.Exec != "store" {
		t.Errorf("result provenance = plan %v exec %q", res.Plan, res.Exec)
	}
	if res.PagesRead == 0 && res.CacheHit {
		t.Error("first query claims a warm cache")
	}

	// sampleGuard hoists author above title: an up-join, not streamable.
	if _, err := eng.Query(ctx, "books", sampleGuard, q, QueryOpts{Exec: ExecStream}); !errors.Is(err, ErrNotStreamable) {
		t.Errorf("store-backed guard under ExecStream: %v, want ErrNotStreamable", err)
	}

	// The deprecated positional-span form still answers.
	old, err := eng.QueryWithSpan(ctx, "books", sampleGuard, q, nil)
	if err != nil {
		t.Fatal(err)
	}
	cur, err := eng.Query(ctx, "books", sampleGuard, q, QueryOpts{})
	if err != nil {
		t.Fatal(err)
	}
	if old.Answer != cur.Answer {
		t.Errorf("QueryWithSpan diverges: %q vs %q", old.Answer, cur.Answer)
	}
	if !cur.CacheHit {
		t.Error("repeated query missed the guard cache")
	}
}

// TestLegacyDocShapeHashFallback: documents shredded before the 'H'
// record existed (simulated by deleting it) still compile and cache.
func TestLegacyDocShapeHashFallback(t *testing.T) {
	ctx := context.Background()
	eng := newEngine(t)
	shredSample(t, eng, "books")
	if err := eng.st.DeleteShapeHash("books"); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 2; i++ {
		if _, err := eng.Check(ctx, "books", sampleGuard, nil); err != nil {
			t.Fatalf("check %d without hash record: %v", i, err)
		}
	}
	if hits, _ := eng.CacheStats(); hits != 1 {
		t.Errorf("legacy doc got %d cache hits, want 1", hits)
	}
	res, err := eng.Run(ctx, "books", sampleGuard, RunOpts{})
	if err != nil {
		t.Fatal(err)
	}
	if !res.CacheHit {
		t.Error("legacy doc run missed the cache")
	}
}
