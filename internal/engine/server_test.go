package engine

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"xmorph/internal/store"
)

func newTestServer(t *testing.T, cfg ServerConfig) (*Engine, *Server, *httptest.Server) {
	t.Helper()
	eng := newEngine(t)
	srv := NewServer(eng, cfg)
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)
	return eng, srv, ts
}

func postJSON(t *testing.T, url string, body any) (*http.Response, []byte) {
	t.Helper()
	raw, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp, data
}

func shredHTTP(t *testing.T, base, name string) {
	t.Helper()
	resp, err := http.Post(base+"/v1/docs/"+name, "application/xml", strings.NewReader(sampleXML))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusCreated {
		body, _ := io.ReadAll(resp.Body)
		t.Fatalf("shred status %d: %s", resp.StatusCode, body)
	}
}

func TestServerShredQueryShapePipeline(t *testing.T) {
	eng, _, ts := newTestServer(t, ServerConfig{})
	shredHTTP(t, ts.URL, "books")

	// Duplicate shred conflicts.
	resp, err := http.Post(ts.URL+"/v1/docs/books", "application/xml", strings.NewReader(sampleXML))
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusConflict {
		t.Errorf("duplicate shred status = %d, want 409", resp.StatusCode)
	}

	// Listing.
	resp, err = http.Get(ts.URL + "/v1/docs")
	if err != nil {
		t.Fatal(err)
	}
	var docs struct {
		Docs []string `json:"docs"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&docs); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if len(docs.Docs) != 1 || docs.Docs[0] != "books" {
		t.Errorf("docs = %v", docs.Docs)
	}

	// Shape equals the engine's view.
	resp, err = http.Get(ts.URL + "/v1/docs/books/shape")
	if err != nil {
		t.Fatal(err)
	}
	shapeText, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	sh, err := eng.Shape(nil, "books", nil)
	if err != nil {
		t.Fatal(err)
	}
	if string(shapeText) != sh.String() {
		t.Errorf("served shape differs:\n%s\nvs\n%s", shapeText, sh.String())
	}

	// Query: JSON answer carries the same XML and loss bytes as a direct
	// engine run (which TestEngineRunMatchesCore ties to the CLI pipeline).
	resp2, data := postJSON(t, ts.URL+"/v1/query", map[string]any{"doc": "books", "guard": sampleGuard})
	if resp2.StatusCode != http.StatusOK {
		t.Fatalf("query status %d: %s", resp2.StatusCode, data)
	}
	var qr struct {
		XML      string `json:"xml"`
		Loss     string `json:"loss"`
		CacheHit bool   `json:"cache_hit"`
	}
	if err := json.Unmarshal(data, &qr); err != nil {
		t.Fatal(err)
	}
	res, err := eng.Run(nil, "books", sampleGuard, RunOpts{})
	if err != nil {
		t.Fatal(err)
	}
	var want bytesBuilder
	if err := res.Output.WriteXML(&want, false); err != nil {
		t.Fatal(err)
	}
	if qr.XML != want.String() {
		t.Errorf("served XML differs from engine run:\n%q\nvs\n%q", qr.XML, want.String())
	}
	if qr.Loss != res.Loss.String() {
		t.Errorf("served loss report differs:\n%q\nvs\n%q", qr.Loss, res.Loss.String())
	}

	// The guard was compiled by the first query; the second is a hit.
	_, data = postJSON(t, ts.URL+"/v1/query", map[string]any{"doc": "books", "guard": sampleGuard})
	if err := json.Unmarshal(data, &qr); err != nil {
		t.Fatal(err)
	}
	if !qr.CacheHit {
		t.Error("repeat query missed the guard cache")
	}

	// Raw and streamed XML modes return the same bytes.
	_, raw := postJSON(t, ts.URL+"/v1/query", map[string]any{"doc": "books", "guard": sampleGuard, "format": "xml"})
	_, streamed := postJSON(t, ts.URL+"/v1/query", map[string]any{"doc": "books", "guard": sampleGuard, "format": "xml", "stream": true})
	if !bytes.Equal(raw, streamed) {
		t.Errorf("streamed bytes differ from rendered:\n%q\nvs\n%q", streamed, raw)
	}

	// XQuery over the guard's output.
	resp2, data = postJSON(t, ts.URL+"/v1/query", map[string]any{
		"doc": "books", "guard": sampleGuard,
		"query": `for $a in doc("books")//author where $a/title = "X" return string($a/name)`,
	})
	var ans struct {
		Answer string `json:"answer"`
	}
	if err := json.Unmarshal(data, &ans); err != nil {
		t.Fatal(err)
	}
	if resp2.StatusCode != http.StatusOK || strings.TrimSpace(ans.Answer) != "V" {
		t.Errorf("guarded query: status %d answer %q", resp2.StatusCode, ans.Answer)
	}

	// Drop, then the document is gone.
	req, _ := http.NewRequest(http.MethodDelete, ts.URL+"/v1/docs/books", nil)
	resp, err = http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusNoContent {
		t.Errorf("drop status = %d", resp.StatusCode)
	}
	resp2, _ = postJSON(t, ts.URL+"/v1/query", map[string]any{"doc": "books", "guard": sampleGuard})
	if resp2.StatusCode != http.StatusNotFound {
		t.Errorf("query after drop status = %d, want 404", resp2.StatusCode)
	}
}

func TestServerMalformedGuardIs400WithPosition(t *testing.T) {
	_, _, ts := newTestServer(t, ServerConfig{})
	shredHTTP(t, ts.URL, "books")

	resp, data := postJSON(t, ts.URL+"/v1/query", map[string]any{"doc": "books", "guard": "MORPH ["})
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("malformed guard status = %d, want 400", resp.StatusCode)
	}
	var e struct {
		Error string `json:"error"`
	}
	if err := json.Unmarshal(data, &e); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(e.Error, "offset") {
		t.Errorf("error %q does not carry the parse position", e.Error)
	}
}

func TestServerDeadlineIs504(t *testing.T) {
	// Two handlers over one engine: shred through a normal one, query
	// through one whose per-request deadline has no chance of being met.
	eng := newEngine(t)
	fast := httptest.NewServer(NewServer(eng, ServerConfig{}).Handler())
	defer fast.Close()
	shredHTTP(t, fast.URL, "books")

	slow := httptest.NewServer(NewServer(eng, ServerConfig{RequestTimeout: time.Nanosecond}).Handler())
	defer slow.Close()
	resp, data := postJSON(t, slow.URL+"/v1/query", map[string]any{"doc": "books", "guard": sampleGuard})
	if resp.StatusCode != http.StatusGatewayTimeout {
		t.Fatalf("expired deadline status = %d (%s), want 504", resp.StatusCode, data)
	}
}

func TestServerOverloadIs429(t *testing.T) {
	_, srv, ts := newTestServer(t, ServerConfig{MaxInFlight: 1})
	shredHTTP(t, ts.URL, "books")

	// Fill the admission semaphore so the next request is refused.
	srv.sem <- struct{}{}
	defer func() { <-srv.sem }()

	resp, data := postJSON(t, ts.URL+"/v1/query", map[string]any{"doc": "books", "guard": sampleGuard})
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("overloaded status = %d (%s), want 429", resp.StatusCode, data)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Error("429 without Retry-After")
	}
}

func TestServerBodyCapIs413(t *testing.T) {
	_, _, ts := newTestServer(t, ServerConfig{MaxBodyBytes: 16})
	resp, err := http.Post(ts.URL+"/v1/docs/big", "application/xml", strings.NewReader(sampleXML))
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusRequestEntityTooLarge {
		t.Errorf("oversized body status = %d, want 413", resp.StatusCode)
	}
}

func TestServerMetricsEndpoint(t *testing.T) {
	_, _, ts := newTestServer(t, ServerConfig{})
	shredHTTP(t, ts.URL, "books")
	postJSON(t, ts.URL+"/v1/query", map[string]any{"doc": "books", "guard": sampleGuard})

	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	text, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	for _, want := range []string{"xmorphd_query_requests_total", "kvstore_cache_hit_ratio", "engine_guard_cache"} {
		if !strings.Contains(string(text), want) {
			t.Errorf("metrics missing %q", want)
		}
	}

	resp, err = http.Get(ts.URL + "/metrics?format=json")
	if err != nil {
		t.Fatal(err)
	}
	raw, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	var parsed map[string]any
	if err := json.Unmarshal(raw, &parsed); err != nil {
		t.Errorf("metrics json does not parse: %v", err)
	}
}

// TestServerGracefulDrain serves a burst of concurrent clients through a
// real http.Server, shuts down mid-flight, and verifies every admitted
// request completed and the store closed cleanly (reopening replays no
// WAL).
func TestServerGracefulDrain(t *testing.T) {
	path := filepath.Join(t.TempDir(), "drain.db")
	eng, err := Open(path, WithCachePages(128), WithDurability(true))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := eng.Shred(nil, "books", strings.NewReader(sampleXML), nil); err != nil {
		t.Fatal(err)
	}

	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	hs := &http.Server{Handler: NewServer(eng, ServerConfig{}).Handler()}
	done := make(chan error, 1)
	go func() { done <- hs.Serve(ln) }()
	base := "http://" + ln.Addr().String()

	const clients = 8
	var wg sync.WaitGroup
	errs := make(chan error, clients)
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 5; i++ {
				resp, err := http.Post(base+"/v1/query", "application/json",
					strings.NewReader(fmt.Sprintf(`{"doc":"books","guard":%q}`, sampleGuard)))
				if err != nil {
					errs <- err
					return
				}
				body, _ := io.ReadAll(resp.Body)
				resp.Body.Close()
				switch resp.StatusCode {
				case http.StatusOK, http.StatusTooManyRequests:
				default:
					errs <- fmt.Errorf("status %d: %s", resp.StatusCode, body)
					return
				}
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}

	if err := hs.Shutdown(context.Background()); err != nil {
		t.Fatal(err)
	}
	if err := <-done; err != http.ErrServerClosed {
		t.Errorf("serve returned %v", err)
	}
	if err := eng.Close(); err != nil {
		t.Fatal(err)
	}

	st, err := store.Open(path, store.WithDurability(true))
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	if got := st.Stats().Recoveries; got != 0 {
		t.Errorf("drained store replayed the WAL on reopen: recoveries=%d", got)
	}
	if _, err := st.Shape("books"); err != nil {
		t.Errorf("document lost across drain: %v", err)
	}
}
