package engine

import (
	"container/list"
	"sync"
	"sync/atomic"

	"xmorph/internal/plan"
)

// guardCache is a small LRU of compiled guards keyed by (document shred
// version, shape hash, guard text). Shred versions are never reused —
// drop + re-shred assigns a fresh one — so a re-shredded document's stale
// compilations can never be served; they simply age out. The shape hash
// makes the key update-aware: an in-place Update that changes the adorned
// shape moves the hash (stale compilations age out the same way), while a
// shape-preserving update keeps every cached guard warm — no re-compile
// for edits the type system cannot observe. Checked values are immutable
// after compilation, so one entry may serve many goroutines at once.
type guardCache struct {
	mu           sync.Mutex
	cap          int
	order        *list.List // front = most recently used
	entries      map[cacheKey]*list.Element
	hits, misses atomic.Uint64
}

type cacheKey struct {
	version   uint32
	shapeHash uint64
	guard     string
}

type cacheEntry struct {
	key     cacheKey
	checked *Checked
	// verdict is the streamability classification of the compiled
	// target, computed once at compile time and served with the guard.
	verdict plan.Decision
}

// newGuardCache builds a cache holding up to capacity entries; a
// capacity <= 0 disables caching (every get misses, puts are dropped).
func newGuardCache(capacity int) *guardCache {
	return &guardCache{
		cap:     capacity,
		order:   list.New(),
		entries: map[cacheKey]*list.Element{},
	}
}

func (c *guardCache) get(version uint32, shapeHash uint64, guard string) (*Checked, plan.Decision) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.entries[cacheKey{version, shapeHash, guard}]
	if !ok {
		c.misses.Add(1)
		metricCacheMisses.Inc()
		return nil, plan.Decision{}
	}
	c.order.MoveToFront(el)
	c.hits.Add(1)
	metricCacheHits.Inc()
	ent := el.Value.(*cacheEntry)
	return ent.checked, ent.verdict
}

func (c *guardCache) put(version uint32, shapeHash uint64, guard string, checked *Checked, verdict plan.Decision) {
	if c.cap <= 0 {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	key := cacheKey{version, shapeHash, guard}
	if el, ok := c.entries[key]; ok {
		c.order.MoveToFront(el)
		ent := el.Value.(*cacheEntry)
		ent.checked, ent.verdict = checked, verdict
		return
	}
	c.entries[key] = c.order.PushFront(&cacheEntry{key: key, checked: checked, verdict: verdict})
	if c.order.Len() > c.cap {
		oldest := c.order.Back()
		c.order.Remove(oldest)
		delete(c.entries, oldest.Value.(*cacheEntry).key)
	}
	metricCacheEntries.Set(float64(c.order.Len()))
}

func (c *guardCache) stats() (hits, misses uint64) {
	return c.hits.Load(), c.misses.Load()
}
