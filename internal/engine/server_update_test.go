package engine

import (
	"encoding/json"
	"io"
	"net/http"
	"strings"
	"testing"
)

// TestServerRouteTable: the versioned API surface is enumerable as data,
// every row is actually routed, and PATCH (the update verb) is one row.
func TestServerRouteTable(t *testing.T) {
	_, srv, ts := newTestServer(t, ServerConfig{})
	routes := srv.Routes()
	want := map[string]bool{
		"POST /v1/docs/{name}":      true,
		"PATCH /v1/docs/{name}":     true,
		"DELETE /v1/docs/{name}":    true,
		"GET /v1/docs":              true,
		"GET /v1/docs/{name}/shape": true,
		"POST /v1/query":            true,
	}
	if len(routes) != len(want) {
		t.Fatalf("route table has %d rows, want %d", len(routes), len(want))
	}
	for _, rt := range routes {
		key := rt.Method + " " + rt.Pattern
		if !want[key] {
			t.Errorf("unexpected route %s", key)
		}
		delete(want, key)
		if rt.Name == "" {
			t.Errorf("route %s has no metrics name", key)
		}
	}
	for key := range want {
		t.Errorf("route %s missing from table", key)
	}

	// Every row answers through the mux (404 from the mux would mean an
	// unrouted row; these all exist, so any status != 404/405 is routed).
	shredHTTP(t, ts.URL, "books")
	probes := []struct {
		method, path string
		body         string
	}{
		{"PATCH", "/v1/docs/books", `insert <x>1</x> into data.book`},
		{"DELETE", "/v1/docs/books", ""},
		{"GET", "/v1/docs", ""},
	}
	for _, p := range probes {
		req, err := http.NewRequest(p.method, ts.URL+p.path, strings.NewReader(p.body))
		if err != nil {
			t.Fatal(err)
		}
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode == http.StatusNotFound || resp.StatusCode == http.StatusMethodNotAllowed {
			t.Errorf("%s %s not routed: status %d", p.method, p.path, resp.StatusCode)
		}
	}
}

// TestServerUpdateEndpoint drives PATCH /v1/docs/{name} end to end:
// plain-text and JSON bodies, the shape-delta report, the visible effect
// on a follow-up query, and the error statuses.
func TestServerUpdateEndpoint(t *testing.T) {
	_, _, ts := newTestServer(t, ServerConfig{})
	shredHTTP(t, ts.URL, "books")

	patch := func(name, contentType, body string) (*http.Response, map[string]any) {
		t.Helper()
		req, err := http.NewRequest(http.MethodPatch, ts.URL+"/v1/docs/"+name, strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		req.Header.Set("Content-Type", contentType)
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var out map[string]any
		raw, _ := io.ReadAll(resp.Body)
		json.Unmarshal(raw, &out)
		return resp, out
	}

	// Plain-text script.
	resp, out := patch("books", "text/plain", `insert <isbn>9</isbn> into data.book`)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("text patch status %d: %v", resp.StatusCode, out)
	}
	if out["nodes_inserted"].(float64) != 2 || out["ops"].(float64) != 1 {
		t.Errorf("patch report = %v", out)
	}
	delta, _ := out["shape_delta"].(map[string]any)
	if delta == nil || delta["kind"] != "widened" {
		t.Errorf("shape_delta = %v, want widened", out["shape_delta"])
	}

	// JSON script: shape-preserving replace.
	resp, out = patch("books", "application/json",
		`{"update":"replace data.book.isbn with <isbn>10</isbn>"}`)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("json patch status %d: %v", resp.StatusCode, out)
	}
	if delta, _ := out["shape_delta"].(map[string]any); delta == nil || delta["kind"] != "unchanged" {
		t.Errorf("replace shape_delta = %v, want unchanged", out["shape_delta"])
	}

	// The edit is query-visible.
	qresp, data := postJSON(t, ts.URL+"/v1/query", map[string]any{
		"doc": "books", "guard": "MORPH book [ isbn ]",
		"query": `for $i in doc("books")//isbn return string($i)`,
	})
	if qresp.StatusCode != http.StatusOK {
		t.Fatalf("query status %d: %s", qresp.StatusCode, data)
	}
	var qr struct {
		Answer string `json:"answer"`
	}
	if err := json.Unmarshal(data, &qr); err != nil {
		t.Fatal(err)
	}
	if strings.Count(qr.Answer, "10") != 2 {
		t.Errorf("query after patch answered %q, want two 10s", qr.Answer)
	}

	// Errors: bad script 400 with offset, missing doc 404, empty body 400.
	resp, out = patch("books", "text/plain", `mangle data.book`)
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("bad script status %d", resp.StatusCode)
	}
	if msg, _ := out["error"].(string); !strings.Contains(msg, "offset") {
		t.Errorf("bad-script error carries no position: %v", out)
	}
	if resp, _ = patch("nosuch", "text/plain", `delete a.b`); resp.StatusCode != http.StatusNotFound {
		t.Errorf("missing doc status %d", resp.StatusCode)
	}
	if resp, _ = patch("books", "text/plain", "   "); resp.StatusCode != http.StatusBadRequest {
		t.Errorf("empty script status %d", resp.StatusCode)
	}
}
