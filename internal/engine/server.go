package engine

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/http/pprof"
	"runtime"
	"sync/atomic"
	"time"

	"xmorph/internal/guard"
	"xmorph/internal/kvstore"
	"xmorph/internal/loss"
	"xmorph/internal/obs"
	"xmorph/internal/semantics"
)

// Server exposes an Engine over HTTP — the xmorphd query service. Every
// request runs under a deadline, heavy endpoints pass an admission
// semaphore (overload answers 429 with Retry-After rather than queueing
// without bound), request bodies are size-capped, and each endpoint
// reports request/error counters and a latency histogram into the obs
// registry that /metrics serves.
type Server struct {
	eng     *Engine
	mux     *http.ServeMux
	sem     chan struct{}
	timeout time.Duration
	maxBody int64
}

// ServerConfig tunes a Server; zero values pick the defaults.
type ServerConfig struct {
	// RequestTimeout bounds each request's pipeline work (default 30s).
	RequestTimeout time.Duration
	// MaxInFlight bounds concurrently admitted heavy requests (shred,
	// query, shape); excess requests get 429 + Retry-After immediately.
	// Default: GOMAXPROCS.
	MaxInFlight int
	// MaxBodyBytes caps request bodies (default 64 MiB).
	MaxBodyBytes int64
}

// NewServer wraps eng in the xmorphd HTTP API.
func NewServer(eng *Engine, cfg ServerConfig) *Server {
	if cfg.RequestTimeout <= 0 {
		cfg.RequestTimeout = 30 * time.Second
	}
	if cfg.MaxInFlight <= 0 {
		cfg.MaxInFlight = runtime.GOMAXPROCS(0)
	}
	if cfg.MaxBodyBytes <= 0 {
		cfg.MaxBodyBytes = 64 << 20
	}
	s := &Server{
		eng:     eng,
		mux:     http.NewServeMux(),
		sem:     make(chan struct{}, cfg.MaxInFlight),
		timeout: cfg.RequestTimeout,
		maxBody: cfg.MaxBodyBytes,
	}
	s.mux.Handle("POST /v1/docs/{name}", s.limited("shred", s.handleShred))
	s.mux.Handle("DELETE /v1/docs/{name}", s.limited("drop", s.handleDrop))
	s.mux.Handle("GET /v1/docs", s.instrumented("docs", s.handleDocs))
	s.mux.Handle("GET /v1/docs/{name}/shape", s.limited("shape", s.handleShape))
	s.mux.Handle("POST /v1/query", s.limited("query", s.handleQuery))
	s.mux.HandleFunc("GET /metrics", s.handleMetrics)
	s.mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		io.WriteString(w, "ok\n")
	})
	s.mux.HandleFunc("/debug/pprof/", pprof.Index)
	s.mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	s.mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	s.mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	s.mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return s
}

// Handler returns the routed HTTP handler.
func (s *Server) Handler() http.Handler { return s.mux }

var (
	metricThrottled = obs.Default.Counter("xmorphd_throttled_total")
	metricInFlight  = obs.Default.Gauge("xmorphd_inflight")
	inFlight        atomic.Int64
)

// instrumented wraps a handler with per-endpoint request/error counters
// and a latency histogram, and stamps the request with the server's
// deadline.
func (s *Server) instrumented(route string, h http.HandlerFunc) http.Handler {
	requests := obs.Default.Counter("xmorphd_" + route + "_requests_total")
	errs := obs.Default.Counter("xmorphd_" + route + "_errors_total")
	seconds := obs.Default.Histogram("xmorphd_"+route+"_seconds", obs.DurationBuckets)
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		requests.Inc()
		start := time.Now()
		ctx, cancel := context.WithTimeout(r.Context(), s.timeout)
		defer cancel()
		rec := &statusRecorder{ResponseWriter: w, status: http.StatusOK}
		h(rec, r.WithContext(ctx))
		seconds.Observe(time.Since(start).Seconds())
		if rec.status >= 400 {
			errs.Inc()
		}
	})
}

// limited adds admission control in front of instrumented: requests
// beyond the in-flight cap are refused immediately with 429 and a
// Retry-After hint, so overload degrades into fast feedback instead of
// unbounded queueing.
func (s *Server) limited(route string, h http.HandlerFunc) http.Handler {
	inner := s.instrumented(route, h)
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		select {
		case s.sem <- struct{}{}:
			metricInFlight.Set(float64(inFlight.Add(1)))
			defer func() {
				<-s.sem
				metricInFlight.Set(float64(inFlight.Add(-1)))
			}()
			inner.ServeHTTP(w, r)
		default:
			metricThrottled.Inc()
			w.Header().Set("Retry-After", "1")
			writeError(w, http.StatusTooManyRequests, errors.New("server at capacity"))
		}
	})
}

// statusRecorder captures the response status for the error counters.
type statusRecorder struct {
	http.ResponseWriter
	status int
}

func (r *statusRecorder) WriteHeader(code int) {
	r.status = code
	r.ResponseWriter.WriteHeader(code)
}

func writeError(w http.ResponseWriter, status int, err error) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(map[string]any{"error": err.Error(), "status": status})
}

// httpStatus maps pipeline errors onto statuses: the compile phase's
// typed errors (syntax with its offset, type mismatch, rejected CAST
// mode) and malformed input are the client's fault (400), missing and
// duplicate documents get their REST statuses, an expired request
// deadline is 504, and an oversized body 413.
func httpStatus(err error) int {
	var (
		syn  *guard.SyntaxError
		typ  *semantics.TypeError
		cast *loss.CastError
		big  *http.MaxBytesError
	)
	switch {
	case errors.Is(err, ErrNotFound):
		return http.StatusNotFound
	case errors.Is(err, ErrExists):
		return http.StatusConflict
	case errors.Is(err, context.DeadlineExceeded), errors.Is(err, context.Canceled):
		return http.StatusGatewayTimeout
	case errors.As(err, &big):
		return http.StatusRequestEntityTooLarge
	case errors.As(err, &syn), errors.As(err, &typ), errors.As(err, &cast):
		return http.StatusBadRequest
	default:
		// Remaining pipeline failures are driven by request content
		// (malformed XML, bad XQuery): the client can fix them.
		return http.StatusBadRequest
	}
}

func (s *Server) handleShred(w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("name")
	body := http.MaxBytesReader(w, r.Body, s.maxBody)
	info, err := s.eng.Shred(r.Context(), name, body, nil)
	if err != nil {
		writeError(w, httpStatus(err), err)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(http.StatusCreated)
	json.NewEncoder(w).Encode(map[string]any{
		"name": info.Name, "nodes": info.Nodes, "types": info.Types,
	})
}

func (s *Server) handleDrop(w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("name")
	if err := s.eng.Drop(r.Context(), name); err != nil {
		writeError(w, httpStatus(err), err)
		return
	}
	w.WriteHeader(http.StatusNoContent)
}

func (s *Server) handleDocs(w http.ResponseWriter, r *http.Request) {
	names, err := s.eng.Docs()
	if err != nil {
		writeError(w, http.StatusInternalServerError, err)
		return
	}
	if names == nil {
		names = []string{}
	}
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(map[string]any{"docs": names})
}

func (s *Server) handleShape(w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("name")
	sh, err := s.eng.Shape(r.Context(), name, nil)
	if err != nil {
		writeError(w, httpStatus(err), err)
		return
	}
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	io.WriteString(w, sh.String())
}

// queryRequest is the POST /v1/query body.
type queryRequest struct {
	// Doc names the shredded document; Guard is the query guard source.
	Doc   string `json:"doc"`
	Guard string `json:"guard"`
	// Query, when set, runs a guarded XQuery query (architecture #3)
	// instead of rendering the whole transformation.
	Query string `json:"query,omitempty"`
	// Format selects the response: "json" (default, XML + reports in one
	// object) or "xml" (raw transformed XML only).
	Format string `json:"format,omitempty"`
	// Stream, with Format "xml", streams the rendering straight to the
	// response without materializing the output tree.
	Stream bool `json:"stream,omitempty"`
	// Indent pretty-prints materialized XML.
	Indent bool `json:"indent,omitempty"`
}

// queryResponse is the JSON answer for a morph (and, with Answer set, a
// guarded query).
type queryResponse struct {
	Doc           string `json:"doc"`
	XML           string `json:"xml,omitempty"`
	Answer        string `json:"answer,omitempty"`
	Loss          string `json:"loss,omitempty"`
	Labels        string `json:"labels,omitempty"`
	Verdict       string `json:"verdict,omitempty"`
	CacheHit      bool   `json:"cache_hit"`
	PagesRead     int64  `json:"pages_read"`
	CompileMicros int64  `json:"compile_us"`
	RenderMicros  int64  `json:"render_us,omitempty"`
	RenderedNodes int    `json:"rendered_nodes,omitempty"`
	KeptTypes     int    `json:"kept_types,omitempty"`
	TotalTypes    int    `json:"total_types,omitempty"`
}

func (s *Server) handleQuery(w http.ResponseWriter, r *http.Request) {
	var req queryRequest
	body := http.MaxBytesReader(w, r.Body, s.maxBody)
	if err := json.NewDecoder(body).Decode(&req); err != nil {
		writeError(w, httpStatus(err), fmt.Errorf("bad request body: %w", err))
		return
	}
	if req.Doc == "" || req.Guard == "" {
		writeError(w, http.StatusBadRequest, errors.New("doc and guard are required"))
		return
	}
	ctx := r.Context()

	if req.Query != "" {
		res, err := s.eng.Query(ctx, req.Doc, req.Guard, req.Query, nil)
		if err != nil {
			writeError(w, httpStatus(err), err)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		json.NewEncoder(w).Encode(queryResponse{
			Doc:           req.Doc,
			Answer:        res.Answer,
			RenderedNodes: res.RenderedNodes,
			KeptTypes:     res.KeptTypes,
			TotalTypes:    res.TotalTypes,
		})
		return
	}

	if req.Stream && req.Format == "xml" {
		// Compile before the first body byte so errors still carry their
		// status; the stream itself renders directly into the response.
		if _, err := s.eng.Check(ctx, req.Doc, req.Guard, nil); err != nil {
			writeError(w, httpStatus(err), err)
			return
		}
		w.Header().Set("Content-Type", "application/xml")
		if _, err := s.eng.Run(ctx, req.Doc, req.Guard, RunOpts{StreamTo: w}); err != nil {
			// Headers are gone; the truncated body is the best signal left.
			fmt.Fprintf(w, "\n<!-- stream aborted: %v -->\n", err)
		}
		return
	}

	res, err := s.eng.Run(ctx, req.Doc, req.Guard, RunOpts{})
	if err != nil {
		writeError(w, httpStatus(err), err)
		return
	}
	if req.Format == "xml" {
		w.Header().Set("Content-Type", "application/xml")
		res.Output.WriteXML(w, req.Indent)
		return
	}
	var xml bytesBuilder
	if err := res.Output.WriteXML(&xml, req.Indent); err != nil {
		writeError(w, http.StatusInternalServerError, err)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(queryResponse{
		Doc:           req.Doc,
		XML:           xml.String(),
		Loss:          res.Loss.String(),
		Labels:        res.LabelReport(),
		Verdict:       res.Loss.Verdict.String(),
		CacheHit:      res.CacheHit,
		PagesRead:     res.PagesRead,
		CompileMicros: res.CompileTime.Microseconds(),
		RenderMicros:  res.RenderTime.Microseconds(),
	})
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	MirrorStoreStats(obs.Default, s.eng.Stats())
	snap := obs.Default.Snapshot()
	if r.URL.Query().Get("format") == "json" {
		raw, err := snap.JSON()
		if err != nil {
			writeError(w, http.StatusInternalServerError, err)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		w.Write(raw)
		io.WriteString(w, "\n")
		return
	}
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	io.WriteString(w, snap.Text())
}

// MirrorStoreStats copies a store's block-I/O, buffer-pool, and WAL
// counters into reg as gauges, so one snapshot carries the pipeline
// histograms and the storage counters together (the CLI's --metrics dump
// and the daemon's /metrics endpoint share this).
func MirrorStoreStats(reg *obs.Registry, s kvstore.Stats) {
	reg.Gauge("kvstore_blocks_read").Set(float64(s.BlocksRead))
	reg.Gauge("kvstore_blocks_written").Set(float64(s.BlocksWritten))
	reg.Gauge("kvstore_cache_hits").Set(float64(s.CacheHits))
	reg.Gauge("kvstore_cache_misses").Set(float64(s.CacheMisses))
	reg.Gauge("kvstore_cache_evictions").Set(float64(s.Evictions))
	reg.Gauge("kvstore_cache_hit_ratio").Set(s.HitRatio())
	reg.Gauge("kvstore_gets").Set(float64(s.Gets))
	reg.Gauge("kvstore_puts").Set(float64(s.Puts))
	reg.Gauge("kvstore_deletes").Set(float64(s.Deletes))
	reg.Gauge("kvstore_seeks").Set(float64(s.Seeks))
	reg.Gauge("kvstore_wal_bytes").Set(float64(s.WALBytes))
	reg.Gauge("kvstore_wal_commits").Set(float64(s.WALCommits))
	reg.Gauge("kvstore_recoveries").Set(float64(s.Recoveries))
}

// bytesBuilder is a minimal strings.Builder-alike that implements
// io.Writer for WriteXML without an extra copy at String time.
type bytesBuilder struct{ buf []byte }

func (b *bytesBuilder) Write(p []byte) (int, error) {
	b.buf = append(b.buf, p...)
	return len(p), nil
}
func (b *bytesBuilder) String() string { return string(b.buf) }
