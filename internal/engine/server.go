package engine

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"net/http/pprof"
	"runtime"
	"strings"
	"sync/atomic"
	"time"

	"xmorph/internal/guard"
	"xmorph/internal/kvstore"
	"xmorph/internal/loss"
	"xmorph/internal/obs"
	"xmorph/internal/semantics"
	"xmorph/internal/update"
)

// Server exposes a Backend — a single Engine or a sharded Cluster —
// over HTTP: the xmorphd query service. Every request runs under a
// deadline, heavy endpoints pass an admission semaphore (overload
// answers 429 with Retry-After rather than queueing without bound),
// request bodies are size-capped, and each endpoint reports
// request/error counters and a latency histogram into the obs registry
// that /metrics serves.
type Server struct {
	eng     Backend
	mux     *http.ServeMux
	sem     chan struct{}
	timeout time.Duration
	maxBody int64

	// Request-scoped observability: 1-in-sample requests get a trace
	// (negative disables tracing), finished traces land in the ring, and
	// log (when non-nil) gets one JSON access-log line per request.
	sample     int
	reqSeq     atomic.Uint64
	ring       *obs.TraceRing
	log        *slog.Logger
	slowThresh time.Duration
}

// ServerConfig tunes a Server; zero values pick the defaults.
type ServerConfig struct {
	// RequestTimeout bounds each request's pipeline work (default 30s).
	RequestTimeout time.Duration
	// MaxInFlight bounds concurrently admitted heavy requests (shred,
	// query, shape); excess requests get 429 + Retry-After immediately.
	// Default: GOMAXPROCS.
	MaxInFlight int
	// MaxBodyBytes caps request bodies (default 64 MiB).
	MaxBodyBytes int64
	// TraceSample traces one in N API requests (default 1: every request
	// carries a span tree into the debug ring). Negative disables request
	// tracing entirely; unsampled requests thread a nil span, so the
	// pipeline's instrumentation costs one pointer compare per site.
	TraceSample int
	// SlowQueryThreshold classifies a traced request as a slow query,
	// retaining its trace in the always-kept slow buffer (default 250ms;
	// negative disables slow retention).
	SlowQueryThreshold time.Duration
	// TraceRingSize bounds the recent-trace ring (default 128).
	TraceRingSize int
	// SlowRingSize bounds the slow-trace buffer (default 32).
	SlowRingSize int
	// AccessLog, when non-nil, receives one structured line per API
	// request (method, route, status, duration, and — for traced
	// requests — trace ID, page I/O, and cache-hit attrs pulled from the
	// finished span tree).
	AccessLog *slog.Logger
}

// NewServer wraps eng in the xmorphd HTTP API.
func NewServer(eng Backend, cfg ServerConfig) *Server {
	if cfg.RequestTimeout <= 0 {
		cfg.RequestTimeout = 30 * time.Second
	}
	if cfg.MaxInFlight <= 0 {
		cfg.MaxInFlight = runtime.GOMAXPROCS(0)
	}
	if cfg.MaxBodyBytes <= 0 {
		cfg.MaxBodyBytes = 64 << 20
	}
	if cfg.TraceSample == 0 {
		cfg.TraceSample = 1
	}
	if cfg.SlowQueryThreshold == 0 {
		cfg.SlowQueryThreshold = 250 * time.Millisecond
	}
	if cfg.TraceRingSize <= 0 {
		cfg.TraceRingSize = 128
	}
	if cfg.SlowRingSize <= 0 {
		cfg.SlowRingSize = 32
	}
	s := &Server{
		eng:        eng,
		mux:        http.NewServeMux(),
		sem:        make(chan struct{}, cfg.MaxInFlight),
		timeout:    cfg.RequestTimeout,
		maxBody:    cfg.MaxBodyBytes,
		sample:     cfg.TraceSample,
		ring:       obs.NewTraceRing(cfg.TraceRingSize, cfg.SlowRingSize, cfg.SlowQueryThreshold),
		log:        cfg.AccessLog,
		slowThresh: cfg.SlowQueryThreshold,
	}
	s.registerV1(s.mux)
	s.mux.HandleFunc("GET /metrics", s.handleMetrics)
	s.mux.HandleFunc("GET /debug/traces", s.handleTraces)
	s.mux.HandleFunc("GET /debug/traces/{id}", s.handleTraceByID)
	s.mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		io.WriteString(w, "ok\n")
	})
	s.mux.HandleFunc("/debug/pprof/", pprof.Index)
	s.mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	s.mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	s.mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	s.mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return s
}

// Handler returns the routed HTTP handler.
func (s *Server) Handler() http.Handler { return s.mux }

// Route is one row of the versioned API surface: the HTTP method and
// ServeMux pattern it answers on, the short name its metrics and access
// logs use, and whether it sits behind the admission semaphore.
type Route struct {
	Method  string
	Pattern string
	Name    string
	Limited bool
	handler http.HandlerFunc
}

// v1Routes is the whole /v1 surface as data: adding an endpoint is one
// row here, and tests enumerate the same table the mux is built from.
func (s *Server) v1Routes() []Route {
	return []Route{
		{"POST", "/v1/docs/{name}", "shred", true, s.handleShred},
		{"PATCH", "/v1/docs/{name}", "update", true, s.handleUpdate},
		{"DELETE", "/v1/docs/{name}", "drop", true, s.handleDrop},
		{"GET", "/v1/docs", "docs", false, s.handleDocs},
		{"GET", "/v1/docs/{name}/shape", "shape", true, s.handleShape},
		{"POST", "/v1/query", "query", true, s.handleQuery},
	}
}

// registerV1 installs the versioned API routes on mux, wrapping each
// handler in the instrumentation middleware and — for Limited rows —
// the admission semaphore.
func (s *Server) registerV1(mux *http.ServeMux) {
	for _, rt := range s.v1Routes() {
		var h http.Handler
		if rt.Limited {
			h = s.limited(rt.Name, rt.handler)
		} else {
			h = s.instrumented(rt.Name, rt.handler)
		}
		mux.Handle(rt.Method+" "+rt.Pattern, h)
	}
}

// Routes returns the versioned API surface (method, pattern, name,
// admission class) so tests and documentation can enumerate it.
func (s *Server) Routes() []Route { return s.v1Routes() }

var (
	metricThrottled = obs.Default.Counter("xmorphd_throttled_total")
	metricInFlight  = obs.Default.Gauge("xmorphd_inflight")
	metricSampled   = obs.Default.Counter("xmorphd_traces_sampled_total")
	metricSlow      = obs.Default.Counter("xmorphd_slow_requests_total")
	inFlight        atomic.Int64
)

// traceKey carries the request's *obs.Trace through the handler chain.
type traceKey struct{}

// traceFrom returns the request's trace (nil when unsampled).
func traceFrom(ctx context.Context) *obs.Trace {
	tr, _ := ctx.Value(traceKey{}).(*obs.Trace)
	return tr
}

// spanFrom returns the request's root span — nil when unsampled, so the
// engine verbs downstream take the free untraced path.
func spanFrom(ctx context.Context) *obs.Span { return traceFrom(ctx).Root() }

// shouldTrace applies the sampling policy: ?explain=1 always traces
// (the client asked for the span tree), otherwise one in sample requests
// is traced; a negative sample disables tracing.
func (s *Server) shouldTrace(r *http.Request) bool {
	if s.sample < 0 {
		return false
	}
	if s.sample <= 1 {
		return true
	}
	if r.URL.Query().Get("explain") == "1" {
		return true
	}
	return s.reqSeq.Add(1)%uint64(s.sample) == 0
}

// instrumented wraps a handler with per-endpoint request/error counters
// and a latency histogram, stamps the request with the server's deadline,
// and — for sampled requests — threads a trace (identity from
// X-Request-Id, generated otherwise) through the handler, retains it in
// the debug ring when finished, and emits the access-log line.
func (s *Server) instrumented(route string, h http.HandlerFunc) http.Handler {
	requests := obs.Default.Counter("xmorphd_" + route + "_requests_total")
	errs := obs.Default.Counter("xmorphd_" + route + "_errors_total")
	seconds := obs.Default.Histogram("xmorphd_"+route+"_seconds", obs.DurationBuckets)
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		requests.Inc()
		start := time.Now()
		ctx, cancel := context.WithTimeout(r.Context(), s.timeout)
		defer cancel()
		var tr *obs.Trace
		if s.shouldTrace(r) {
			id := r.Header.Get("X-Request-Id")
			if id == "" {
				id = obs.NewID()
			}
			tr = obs.NewWithID(route, id)
			ctx = context.WithValue(ctx, traceKey{}, tr)
			w.Header().Set("X-Request-Id", id)
			metricSampled.Inc()
		}
		rec := &statusRecorder{ResponseWriter: w, status: http.StatusOK}
		h(rec, r.WithContext(ctx))
		dur := time.Since(start)
		seconds.Observe(dur.Seconds())
		if rec.status >= 400 {
			errs.Inc()
		}
		slow := false
		if tr != nil {
			tr.Finish()
			if slow = s.ring.Add(tr); slow {
				metricSlow.Inc()
			}
		}
		s.logAccess(r, route, rec.status, dur, tr, slow)
	})
}

// logAccess emits the structured access-log line. Request-shape fields
// are always present; span-derived fields (trace ID, page I/O, cache
// hit) only for traced requests.
func (s *Server) logAccess(r *http.Request, route string, status int, dur time.Duration, tr *obs.Trace, slow bool) {
	if s.log == nil {
		return
	}
	attrs := []slog.Attr{
		slog.String("method", r.Method),
		slog.String("route", route),
		slog.String("path", r.URL.Path),
		slog.Int("status", status),
		slog.Float64("dur_ms", float64(dur.Nanoseconds())/1e6),
	}
	if tr != nil {
		root := tr.Root()
		_, cacheHit := root.FindAttr("cached")
		attrs = append(attrs,
			slog.String("trace_id", tr.ID()),
			slog.Int64("pages_read", root.SumAttr("pages-read")),
			slog.Int64("page_hits", root.SumAttr("page-hits")),
			slog.Bool("cache_hit", cacheHit),
			slog.Bool("slow", slow),
		)
	}
	s.log.LogAttrs(context.Background(), slog.LevelInfo, "request", attrs...)
}

// limited adds admission control in front of instrumented: requests
// beyond the in-flight cap are refused immediately with 429 and a
// Retry-After hint, so overload degrades into fast feedback instead of
// unbounded queueing.
func (s *Server) limited(route string, h http.HandlerFunc) http.Handler {
	inner := s.instrumented(route, h)
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		select {
		case s.sem <- struct{}{}:
			metricInFlight.Set(float64(inFlight.Add(1)))
			defer func() {
				<-s.sem
				metricInFlight.Set(float64(inFlight.Add(-1)))
			}()
			inner.ServeHTTP(w, r)
		default:
			metricThrottled.Inc()
			w.Header().Set("Retry-After", "1")
			writeError(w, http.StatusTooManyRequests, errors.New("server at capacity"))
		}
	})
}

// statusRecorder captures the response status for the error counters.
type statusRecorder struct {
	http.ResponseWriter
	status int
}

func (r *statusRecorder) WriteHeader(code int) {
	r.status = code
	r.ResponseWriter.WriteHeader(code)
}

func writeError(w http.ResponseWriter, status int, err error) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(map[string]any{"error": err.Error(), "status": status})
}

// httpStatus maps pipeline errors onto statuses: the compile phase's
// typed errors (syntax with its offset, type mismatch, rejected CAST
// mode) and malformed input are the client's fault (400), missing and
// duplicate documents get their REST statuses, an expired request
// deadline is 504, and an oversized body 413.
func httpStatus(err error) int {
	var (
		syn  *guard.SyntaxError
		upd  *update.SyntaxError
		typ  *semantics.TypeError
		cast *loss.CastError
		big  *http.MaxBytesError
	)
	switch {
	case errors.Is(err, ErrNotFound):
		return http.StatusNotFound
	case errors.Is(err, ErrExists):
		return http.StatusConflict
	case errors.Is(err, context.DeadlineExceeded), errors.Is(err, context.Canceled):
		return http.StatusGatewayTimeout
	case errors.As(err, &big):
		return http.StatusRequestEntityTooLarge
	case errors.As(err, &syn), errors.As(err, &upd), errors.As(err, &typ), errors.As(err, &cast):
		return http.StatusBadRequest
	default:
		// Remaining pipeline failures are driven by request content
		// (malformed XML, bad XQuery): the client can fix them.
		return http.StatusBadRequest
	}
}

func (s *Server) handleShred(w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("name")
	body := http.MaxBytesReader(w, r.Body, s.maxBody)
	info, err := s.eng.Shred(r.Context(), name, body, spanFrom(r.Context()))
	if err != nil {
		writeError(w, httpStatus(err), err)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(http.StatusCreated)
	json.NewEncoder(w).Encode(map[string]any{
		"name": info.Name, "nodes": info.Nodes, "types": info.Types,
	})
}

func (s *Server) handleDrop(w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("name")
	if err := s.eng.Drop(r.Context(), name, spanFrom(r.Context())); err != nil {
		writeError(w, httpStatus(err), err)
		return
	}
	w.WriteHeader(http.StatusNoContent)
}

// updateRequest is the PATCH /v1/docs/{name} body when sent as JSON;
// a text/plain body is the bare edit script.
type updateRequest struct {
	Update string `json:"update"`
}

func (s *Server) handleUpdate(w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("name")
	body := http.MaxBytesReader(w, r.Body, s.maxBody)
	var script string
	if ct := r.Header.Get("Content-Type"); strings.Contains(ct, "json") {
		var req updateRequest
		if err := json.NewDecoder(body).Decode(&req); err != nil {
			writeError(w, httpStatus(err), fmt.Errorf("bad request body: %w", err))
			return
		}
		script = req.Update
	} else {
		raw, err := io.ReadAll(body)
		if err != nil {
			writeError(w, httpStatus(err), err)
			return
		}
		script = string(raw)
	}
	if strings.TrimSpace(script) == "" {
		writeError(w, http.StatusBadRequest, errors.New("empty update script"))
		return
	}
	info, err := s.eng.Update(r.Context(), name, script, spanFrom(r.Context()))
	if err != nil {
		writeError(w, httpStatus(err), err)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(map[string]any{
		"name":           info.Name,
		"ops":            info.Ops,
		"nodes_inserted": info.NodesInserted,
		"nodes_deleted":  info.NodesDeleted,
		"pages_written":  info.PagesWritten,
		"shape_delta": map[string]any{
			"kind":           info.Delta.Kind.String(),
			"types_added":    info.Delta.TypesAdded,
			"types_removed":  info.Delta.TypesRemoved,
			"edges_narrowed": info.Delta.EdgesNarrowed,
			"edges_widened":  info.Delta.EdgesWidened,
			"reordered":      info.Delta.Reordered,
		},
	})
}

func (s *Server) handleDocs(w http.ResponseWriter, r *http.Request) {
	names, err := s.eng.Docs(r.Context(), spanFrom(r.Context()))
	if err != nil {
		writeError(w, http.StatusInternalServerError, err)
		return
	}
	if names == nil {
		names = []string{}
	}
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(map[string]any{"docs": names})
}

func (s *Server) handleShape(w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("name")
	sh, err := s.eng.Shape(r.Context(), name, spanFrom(r.Context()))
	if err != nil {
		writeError(w, httpStatus(err), err)
		return
	}
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	io.WriteString(w, sh.String())
}

// queryRequest is the POST /v1/query body.
type queryRequest struct {
	// Doc names the shredded document; Guard is the query guard source.
	Doc   string `json:"doc"`
	Guard string `json:"guard"`
	// Query, when set, runs a guarded XQuery query (architecture #3)
	// instead of rendering the whole transformation.
	Query string `json:"query,omitempty"`
	// Format selects the response: "json" (default, XML + reports in one
	// object) or "xml" (raw transformed XML only).
	Format string `json:"format,omitempty"`
	// Stream, with Format "xml", streams the rendering straight to the
	// response without materializing the output tree.
	Stream bool `json:"stream,omitempty"`
	// Indent pretty-prints materialized XML.
	Indent bool `json:"indent,omitempty"`
}

// queryResponse is the JSON answer for a morph (and, with Answer set, a
// guarded query).
type queryResponse struct {
	Doc     string `json:"doc"`
	XML     string `json:"xml,omitempty"`
	Answer  string `json:"answer,omitempty"`
	Loss    string `json:"loss,omitempty"`
	Labels  string `json:"labels,omitempty"`
	Verdict string `json:"verdict,omitempty"`
	// Exec names the execution path that produced XML ("stream": the
	// one-pass streaming executor; "store": the join-backed renderer), and
	// Streamable/PlanReason report the planner's verdict on the guard.
	Exec          string `json:"exec,omitempty"`
	Streamable    bool   `json:"streamable,omitempty"`
	PlanReason    string `json:"plan_reason,omitempty"`
	CacheHit      bool   `json:"cache_hit"`
	PagesRead     int64  `json:"pages_read"`
	CompileMicros int64  `json:"compile_us"`
	RenderMicros  int64  `json:"render_us,omitempty"`
	RenderedNodes int    `json:"rendered_nodes,omitempty"`
	KeptTypes     int    `json:"kept_types,omitempty"`
	TotalTypes    int    `json:"total_types,omitempty"`
	// TraceID and Trace carry the request's span tree when the client
	// asked for ?explain=1: per-stage durations, page reads/hits, and the
	// loss verdict in one payload.
	TraceID string          `json:"trace_id,omitempty"`
	Trace   json.RawMessage `json:"trace,omitempty"`
}

// explainInto freezes the request trace and embeds its span tree in the
// response (the outer middleware's later Finish keeps this duration).
func explainInto(resp *queryResponse, tr *obs.Trace) {
	if tr == nil {
		return
	}
	tr.Finish()
	raw, err := tr.JSON()
	if err != nil {
		return
	}
	resp.TraceID = tr.ID()
	resp.Trace = raw
}

func (s *Server) handleQuery(w http.ResponseWriter, r *http.Request) {
	var req queryRequest
	body := http.MaxBytesReader(w, r.Body, s.maxBody)
	if err := json.NewDecoder(body).Decode(&req); err != nil {
		writeError(w, httpStatus(err), fmt.Errorf("bad request body: %w", err))
		return
	}
	if req.Doc == "" || req.Guard == "" {
		writeError(w, http.StatusBadRequest, errors.New("doc and guard are required"))
		return
	}
	ctx := r.Context()
	tr := traceFrom(ctx)
	sp := tr.Root()
	explain := r.URL.Query().Get("explain") == "1"

	if req.Query != "" {
		res, err := s.eng.Query(ctx, req.Doc, req.Guard, req.Query, QueryOpts{Span: sp})
		if err != nil {
			writeError(w, httpStatus(err), err)
			return
		}
		resp := queryResponse{
			Doc:           req.Doc,
			Answer:        res.Answer,
			RenderedNodes: res.RenderedNodes,
			KeptTypes:     res.KeptTypes,
			TotalTypes:    res.TotalTypes,
			Streamable:    res.Streamable,
			PlanReason:    res.PlanReason,
			Exec:          res.Exec,
			CacheHit:      res.CacheHit,
			PagesRead:     res.PagesRead,
		}
		if explain {
			explainInto(&resp, tr)
		}
		w.Header().Set("Content-Type", "application/json")
		json.NewEncoder(w).Encode(resp)
		return
	}

	if req.Stream && req.Format == "xml" {
		// Compile before the first body byte so errors still carry their
		// status; the stream itself renders directly into the response.
		if _, err := s.eng.Check(ctx, req.Doc, req.Guard, sp); err != nil {
			writeError(w, httpStatus(err), err)
			return
		}
		w.Header().Set("Content-Type", "application/xml")
		if _, err := s.eng.Run(ctx, req.Doc, req.Guard, RunOpts{Span: sp, StreamTo: w}); err != nil {
			// Headers are gone; the truncated body is the best signal left.
			fmt.Fprintf(w, "\n<!-- stream aborted: %v -->\n", err)
		}
		return
	}

	// JSON responses render into a buffer anyway, so let the engine stream
	// into it: streamable guards take the one-pass executor (no result
	// tree), store-backed ones the join-backed streamer — bytes identical
	// either way. Pretty-printing and raw-XML responses need the
	// materialized tree.
	opts := RunOpts{Span: sp}
	var xml bytesBuilder
	streaming := req.Format != "xml" && !req.Indent
	if streaming {
		opts.StreamTo = &xml
	}
	res, err := s.eng.Run(ctx, req.Doc, req.Guard, opts)
	if err != nil {
		writeError(w, httpStatus(err), err)
		return
	}
	if req.Format == "xml" {
		w.Header().Set("Content-Type", "application/xml")
		res.Output.WriteXML(w, req.Indent)
		return
	}
	if !streaming {
		if err := res.Output.WriteXML(&xml, req.Indent); err != nil {
			writeError(w, http.StatusInternalServerError, err)
			return
		}
	}
	exec := "store"
	if res.StreamExec {
		exec = "stream"
	}
	resp := queryResponse{
		Doc:           req.Doc,
		XML:           xml.String(),
		Loss:          res.Loss.String(),
		Labels:        res.LabelReport(),
		Verdict:       res.Loss.Verdict.String(),
		Exec:          exec,
		Streamable:    res.Plan.Streamable,
		PlanReason:    res.Plan.Reason,
		CacheHit:      res.CacheHit,
		PagesRead:     res.PagesRead,
		CompileMicros: res.CompileTime.Microseconds(),
		RenderMicros:  res.RenderTime.Microseconds(),
	}
	if explain {
		explainInto(&resp, tr)
	}
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(resp)
}

// handleTraces lists the retained traces: the recent ring and the
// always-kept slow buffer, newest first.
func (s *Server) handleTraces(w http.ResponseWriter, r *http.Request) {
	recent, slow := s.ring.Summaries()
	if recent == nil {
		recent = []obs.TraceSummary{}
	}
	if slow == nil {
		slow = []obs.TraceSummary{}
	}
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(map[string]any{
		"slow_threshold_ms": float64(s.ring.Threshold().Nanoseconds()) / 1e6,
		"recent":            recent,
		"slow":              slow,
	})
}

// handleTraceByID serves one retained trace's full span tree.
func (s *Server) handleTraceByID(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	tr := s.ring.Get(id)
	if tr == nil {
		writeError(w, http.StatusNotFound, fmt.Errorf("trace %q not retained", id))
		return
	}
	raw, err := tr.JSON()
	if err != nil {
		writeError(w, http.StatusInternalServerError, err)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(map[string]any{
		"id":     tr.ID(),
		"dur_ms": float64(tr.Duration().Nanoseconds()) / 1e6,
		"trace":  json.RawMessage(raw),
	})
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	MirrorStoreStats(obs.Default, s.eng.Stats())
	snap := obs.Default.Snapshot()
	if r.URL.Query().Get("format") == "json" {
		raw, err := snap.JSON()
		if err != nil {
			writeError(w, http.StatusInternalServerError, err)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		w.Write(raw)
		io.WriteString(w, "\n")
		return
	}
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	io.WriteString(w, snap.Text())
}

// MirrorStoreStats copies a store's block-I/O, buffer-pool, and WAL
// counters into reg as gauges, so one snapshot carries the pipeline
// histograms and the storage counters together (the CLI's --metrics dump
// and the daemon's /metrics endpoint share this).
func MirrorStoreStats(reg *obs.Registry, s kvstore.Stats) {
	reg.Gauge("kvstore_blocks_read").Set(float64(s.BlocksRead))
	reg.Gauge("kvstore_blocks_written").Set(float64(s.BlocksWritten))
	reg.Gauge("kvstore_cache_hits").Set(float64(s.CacheHits))
	reg.Gauge("kvstore_cache_misses").Set(float64(s.CacheMisses))
	reg.Gauge("kvstore_cache_evictions").Set(float64(s.Evictions))
	reg.Gauge("kvstore_cache_hit_ratio").Set(s.HitRatio())
	reg.Gauge("kvstore_gets").Set(float64(s.Gets))
	reg.Gauge("kvstore_puts").Set(float64(s.Puts))
	reg.Gauge("kvstore_deletes").Set(float64(s.Deletes))
	reg.Gauge("kvstore_seeks").Set(float64(s.Seeks))
	reg.Gauge("kvstore_wal_bytes").Set(float64(s.WALBytes))
	reg.Gauge("kvstore_wal_commits").Set(float64(s.WALCommits))
	reg.Gauge("kvstore_recoveries").Set(float64(s.Recoveries))
	reg.Gauge("kvstore_snapshots_open").Set(float64(s.SnapshotsOpen))
	reg.Gauge("kvstore_epoch").Set(float64(s.Epoch))
	reg.Gauge("kvstore_pages_retained").Set(float64(s.PagesRetained))
	reg.Gauge("kvstore_pages_retired").Set(float64(s.PagesRetired))
	reg.Gauge("kvstore_sync_calls").Set(float64(s.SyncCalls))
	reg.Gauge("kvstore_group_commits").Set(float64(s.GroupCommits))
	reg.Gauge("kvstore_wal_commit_fsyncs").Set(float64(s.WALFsyncs))
	reg.Gauge("kvstore_commit_lsn").Set(float64(s.CommitLSN))
	reg.Gauge("kvstore_applied_lsn").Set(float64(s.AppliedLSN))
}

// bytesBuilder is a minimal strings.Builder-alike that implements
// io.Writer for WriteXML without an extra copy at String time.
type bytesBuilder struct{ buf []byte }

func (b *bytesBuilder) Write(p []byte) (int, error) {
	b.buf = append(b.buf, p...)
	return len(p), nil
}
func (b *bytesBuilder) String() string { return string(b.buf) }
