// Package algebra implements the operator algebra of Section VIII: XMorph
// programs translate to a tree of algebraic operators (Figure 9), which a
// two-phase type analysis then annotates — candidate type sets flow up the
// tree, closest operators keep only minimal-distance pairs, and the chosen
// sets are pushed back down to prune the leaves.
//
// The interpreter proper (internal/semantics) performs the same selection
// while building target shapes; this package exposes the algebra as an
// inspectable artifact: cmd/xmorph -explain prints it, and the analysis
// doubles as documentation of how labels were resolved.
package algebra

import (
	"fmt"
	"strings"

	"xmorph/internal/guard"
	"xmorph/internal/shape"
	"xmorph/internal/xmltree"
)

// OpKind enumerates the algebra operators of Section VIII.
type OpKind int

const (
	OpCompose OpKind = iota
	OpMorph
	OpMutate
	OpTranslate
	OpType
	OpDrop
	OpClosest
	OpClone
	OpNew
	OpRestrict
	OpChildren
	OpDescendants
)

func (k OpKind) String() string {
	switch k {
	case OpCompose:
		return "compose"
	case OpMorph:
		return "morph"
	case OpMutate:
		return "mutate"
	case OpTranslate:
		return "translate"
	case OpType:
		return "type"
	case OpDrop:
		return "drop"
	case OpClosest:
		return "closest"
	case OpClone:
		return "clone"
	case OpNew:
		return "new"
	case OpRestrict:
		return "restrict"
	case OpChildren:
		return "children"
	case OpDescendants:
		return "descendants"
	}
	return fmt.Sprintf("op(%d)", int(k))
}

// Op is one algebra operator. Leaves are type(label) selections; closest
// operators pair a parent expression with a child expression.
type Op struct {
	Kind    OpKind
	Label   string         // type/new/drop label
	Renames []guard.Rename // translate dictionary
	Args    []*Op
	// Types is filled by Analyze: the inferred source types after both
	// analysis phases.
	Types []string
}

// FromProgram translates a parsed guard into the algebra. Composition
// becomes a left-leaning compose chain.
func FromProgram(p *guard.Program) *Op {
	var root *Op
	for _, st := range p.Stages {
		op := fromStage(st)
		if root == nil {
			root = op
		} else {
			root = &Op{Kind: OpCompose, Args: []*Op{root, op}}
		}
	}
	return root
}

func fromStage(st *guard.Stage) *Op {
	switch st.Kind {
	case guard.StageTranslate:
		return &Op{Kind: OpTranslate, Renames: st.Renames}
	case guard.StageMutate:
		return &Op{Kind: OpMutate, Args: fromTerms(st.Patterns)}
	default:
		return &Op{Kind: OpMorph, Args: fromTerms(st.Patterns)}
	}
}

func fromTerms(terms []*guard.Term) []*Op {
	ops := make([]*Op, 0, len(terms))
	for _, t := range terms {
		ops = append(ops, fromTerm(t))
	}
	return ops
}

// fromTerm folds a pattern term into closest operators: each bracketed
// child adds one closest(acc, child) layer (Figure 9's shape).
func fromTerm(t *guard.Term) *Op {
	var acc *Op
	switch t.Kind {
	case guard.TermLabel:
		acc = &Op{Kind: OpType, Label: t.Label}
	case guard.TermNew:
		acc = &Op{Kind: OpNew, Label: t.Label}
	case guard.TermDrop:
		acc = &Op{Kind: OpDrop, Args: []*Op{fromTerm(t.Operand)}}
	case guard.TermClone:
		acc = &Op{Kind: OpClone, Args: []*Op{fromTerm(t.Operand)}}
	case guard.TermRestrict:
		acc = &Op{Kind: OpRestrict, Args: []*Op{fromTerm(t.Operand)}}
	case guard.TermChildren:
		return &Op{Kind: OpChildren}
	case guard.TermDescendants:
		return &Op{Kind: OpDescendants}
	}
	for _, kid := range t.Kids {
		acc = &Op{Kind: OpClosest, Args: []*Op{acc, fromTerm(kid)}}
	}
	return acc
}

// String renders the operator tree with indentation (the Figure 9 view).
func (o *Op) String() string {
	var b strings.Builder
	o.write(&b, 0)
	return b.String()
}

func (o *Op) write(b *strings.Builder, depth int) {
	b.WriteString(strings.Repeat("  ", depth))
	b.WriteString(o.Kind.String())
	switch o.Kind {
	case OpType, OpNew, OpDrop:
		if o.Label != "" {
			fmt.Fprintf(b, "(%s)", o.Label)
		}
	case OpTranslate:
		parts := make([]string, len(o.Renames))
		for i, r := range o.Renames {
			parts[i] = r.From + " -> " + r.To
		}
		fmt.Fprintf(b, "(%s)", strings.Join(parts, ", "))
	}
	if len(o.Types) > 0 {
		fmt.Fprintf(b, " :: %v", o.Types)
	}
	b.WriteString("\n")
	for _, a := range o.Args {
		a.write(b, depth+1)
	}
}

// Analyze runs the two-phase type analysis against an input shape,
// annotating every operator's Types in place. Phase one flows candidate
// sets up; each closest operator keeps only type pairs at minimal type
// distance. Phase two pushes the surviving sets down to the leaves so no
// operator generates data for types unused above it.
func Analyze(o *Op, in *shape.Shape) {
	up(o, in)
	down(o, o.Types)
}

// up flows candidate sets toward the root and returns the op's set.
func up(o *Op, in *shape.Shape) []string {
	switch o.Kind {
	case OpType:
		for _, t := range in.Types() {
			if matchesLabel(o.Label, t) {
				o.Types = append(o.Types, t)
			}
		}
	case OpClosest:
		parents := up(o.Args[0], in)
		children := up(o.Args[1], in)
		o.Types = closestParents(parents, children)
	case OpCompose, OpMorph, OpMutate, OpDrop, OpClone, OpRestrict:
		for _, a := range o.Args {
			o.Types = append(o.Types, up(a, in)...)
		}
	case OpNew, OpTranslate, OpChildren, OpDescendants:
		// No source types of their own.
	}
	return o.Types
}

// down prunes each operator's set to those consistent with its parent.
func down(o *Op, keep []string) {
	if o.Kind == OpType || o.Kind == OpClosest {
		o.Types = intersect(o.Types, keep)
	}
	switch o.Kind {
	case OpClosest:
		// The parent arm keeps the closest-op's own (parent) set; the
		// child arm keeps types at minimal distance to a kept parent.
		down(o.Args[0], o.Types)
		down(o.Args[1], closestChildren(o.Types, o.Args[1].Types))
	default:
		for _, a := range o.Args {
			down(a, keep)
		}
	}
}

// closestParents keeps the parent types participating in minimal-distance
// pairs (the up phase of the closest operator).
func closestParents(parents, children []string) []string {
	if len(parents) == 0 {
		return nil
	}
	if len(children) == 0 {
		return parents // child arm is NEW/children/etc: no pruning
	}
	min := -1
	for _, p := range parents {
		for _, c := range children {
			if d := xmltree.TypeDistance(p, c); min < 0 || d < min {
				min = d
			}
		}
	}
	var out []string
	seen := map[string]bool{}
	for _, p := range parents {
		for _, c := range children {
			if xmltree.TypeDistance(p, c) == min && !seen[p] {
				seen[p] = true
				out = append(out, p)
			}
		}
	}
	return out
}

// closestChildren keeps the child types at minimal distance to any kept
// parent (the down phase).
func closestChildren(parents, children []string) []string {
	if len(parents) == 0 || len(children) == 0 {
		return children
	}
	min := -1
	for _, p := range parents {
		for _, c := range children {
			if d := xmltree.TypeDistance(p, c); min < 0 || d < min {
				min = d
			}
		}
	}
	var out []string
	seen := map[string]bool{}
	for _, c := range children {
		for _, p := range parents {
			if xmltree.TypeDistance(p, c) == min && !seen[c] {
				seen[c] = true
				out = append(out, c)
			}
		}
	}
	return out
}

func intersect(a, keep []string) []string {
	if keep == nil {
		return a
	}
	set := map[string]bool{}
	for _, k := range keep {
		set[k] = true
	}
	var out []string
	for _, x := range a {
		if set[x] {
			out = append(out, x)
		}
	}
	return out
}

// matchesLabel mirrors the semantics package's label matching: plain
// labels match the last path component case-insensitively, dotted labels
// match dotted suffixes.
func matchesLabel(label, typePath string) bool {
	l := strings.ToLower(label)
	p := strings.ToLower(typePath)
	if !strings.Contains(l, xmltree.TypeSep) {
		last := p
		if i := strings.LastIndex(p, xmltree.TypeSep); i >= 0 {
			last = p[i+1:]
		}
		if !strings.HasPrefix(l, "@") {
			last = strings.TrimPrefix(last, "@")
		}
		return l == last
	}
	return p == l || strings.HasSuffix(p, xmltree.TypeSep+l)
}
