package algebra

import (
	"strings"
	"testing"

	"xmorph/internal/guard"
	"xmorph/internal/shape"
	"xmorph/internal/xmltree"
)

// TestFig9Translation reproduces Figure 9: the example query translates to
// a morph over nested closest operators with type leaves.
func TestFig9Translation(t *testing.T) {
	p := guard.MustParse("MORPH author [name publisher [name book [title price]]]")
	op := FromProgram(p)
	s := op.String()
	for _, want := range []string{"morph", "closest", "type(author)", "type(name)", "type(publisher)", "type(book)", "type(title)", "type(price)"} {
		if !strings.Contains(s, want) {
			t.Errorf("algebra missing %s:\n%s", want, s)
		}
	}
	if strings.Count(s, "closest") != 6 {
		t.Errorf("expected 6 closest operators (one per bracketed child):\n%s", s)
	}
	if op.Kind != OpMorph {
		t.Errorf("root = %v", op.Kind)
	}
}

func TestComposeChain(t *testing.T) {
	p := guard.MustParse("MORPH a | MUTATE b | TRANSLATE a -> c")
	op := FromProgram(p)
	if op.Kind != OpCompose {
		t.Fatalf("root = %v", op.Kind)
	}
	if op.Args[1].Kind != OpTranslate {
		t.Errorf("right arm = %v", op.Args[1].Kind)
	}
	if op.Args[0].Kind != OpCompose {
		t.Errorf("left arm = %v (compose chains left)", op.Args[0].Kind)
	}
	if !strings.Contains(op.String(), "translate(a -> c)") {
		t.Errorf("translate missing dictionary:\n%s", op)
	}
}

func TestWrapperOperators(t *testing.T) {
	p := guard.MustParse("MUTATE (NEW scribe) [ author ] (DROP title) x [ CLONE y (RESTRICT z [ w ]) ]")
	s := FromProgram(p).String()
	for _, want := range []string{"new(scribe)", "drop", "clone", "restrict"} {
		if !strings.Contains(s, want) {
			t.Errorf("missing %s:\n%s", want, s)
		}
	}
}

func TestAnalyzeResolvesAmbiguity(t *testing.T) {
	doc := xmltree.MustParse(`<data>
	  <book>
	    <author><name>V</name></author>
	    <publisher><name>W</name></publisher>
	  </book>
	</data>`)
	in := shape.FromDocument(doc)
	op := FromProgram(guard.MustParse("MORPH author [ name ]"))
	Analyze(op, in)
	// The closest op's child arm must resolve name to the author's name.
	cl := op.Args[0]
	if cl.Kind != OpClosest {
		t.Fatalf("arg = %v", cl.Kind)
	}
	child := cl.Args[1]
	if len(child.Types) != 1 || child.Types[0] != "data.book.author.name" {
		t.Errorf("name resolved to %v, want author name", child.Types)
	}
	if len(cl.Types) != 1 || cl.Types[0] != "data.book.author" {
		t.Errorf("closest parent types = %v", cl.Types)
	}
}

func TestAnalyzePushdownPrunesParents(t *testing.T) {
	// Two author types; only book.author is closest to isbn.
	doc := xmltree.MustParse(`<lib>
	  <book><author>A</author><isbn>1</isbn></book>
	  <journal><author>B</author></journal>
	</lib>`)
	in := shape.FromDocument(doc)
	op := FromProgram(guard.MustParse("MORPH author [ isbn ]"))
	Analyze(op, in)
	cl := op.Args[0]
	if len(cl.Types) != 1 || cl.Types[0] != "lib.book.author" {
		t.Errorf("parent pruning failed: %v", cl.Types)
	}
}

func TestAnalyzeTypeLeafAnnotation(t *testing.T) {
	doc := xmltree.MustParse(`<a><b/><c><b/></c></a>`)
	op := FromProgram(guard.MustParse("MORPH b"))
	Analyze(op, shape.FromDocument(doc))
	leaf := op.Args[0]
	if len(leaf.Types) != 2 {
		t.Errorf("b should match both types: %v", leaf.Types)
	}
	if !strings.Contains(op.String(), ":: [") {
		t.Errorf("analysis annotation missing:\n%s", op)
	}
}

func TestAnalyzeComposePipesTypes(t *testing.T) {
	doc := xmltree.MustParse(`<data><a><b>1</b></a></data>`)
	in := shape.FromDocument(doc)
	op := FromProgram(guard.MustParse("MORPH a [ b ] | MUTATE (DROP b)"))
	Analyze(op, in)
	if op.Kind != OpCompose {
		t.Fatalf("root = %v", op.Kind)
	}
	// The left (MORPH) arm resolved a and b against the source shape.
	left := op.Args[0]
	if len(left.Types) == 0 {
		t.Errorf("compose left arm has no types:\n%s", op)
	}
}

func TestAnalyzeStarOperators(t *testing.T) {
	doc := xmltree.MustParse(`<data><a><b/><c/></a></data>`)
	op := FromProgram(guard.MustParse("MORPH a [ * ]"))
	Analyze(op, shape.FromDocument(doc))
	s := op.String()
	if !strings.Contains(s, "children") {
		t.Errorf("children op missing:\n%s", s)
	}
}

func TestOpKindStrings(t *testing.T) {
	kinds := []OpKind{OpCompose, OpMorph, OpMutate, OpTranslate, OpType, OpDrop, OpClosest, OpClone, OpNew, OpRestrict, OpChildren, OpDescendants}
	seen := map[string]bool{}
	for _, k := range kinds {
		s := k.String()
		if s == "" || seen[s] {
			t.Errorf("kind %d has bad/duplicate string %q", int(k), s)
		}
		seen[s] = true
	}
}
