// Command xmorphd serves the XMorph pipeline over HTTP — the query
// service form of the paper's architecture #1: documents are shredded
// into a store once, then query guards run against them over the wire.
//
//	xmorphd -store data.db -addr :8080
//
//	POST   /v1/docs/{name}        shred the request body (XML) as name
//	GET    /v1/docs               list shredded documents
//	GET    /v1/docs/{name}/shape  print a document's adorned shape
//	DELETE /v1/docs/{name}        drop a document
//	POST   /v1/query              {"doc","guard"[,"query","format","stream","indent"]}
//	GET    /metrics               obs registry snapshot (?format=json)
//	GET    /debug/pprof/          runtime profiles
//
// Every request runs under a deadline; load beyond -max-inflight is
// refused with 429 + Retry-After. SIGINT/SIGTERM drain gracefully:
// in-flight requests finish (up to -drain), then the store syncs and
// closes.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"xmorph/internal/engine"
)

func main() {
	addr := flag.String("addr", ":8080", "listen address")
	storePath := flag.String("store", "xmorph.db", "store file for shredded documents")
	cache := flag.Int("cache", 256, "buffer pool size in pages")
	durability := flag.Bool("durability", false, "crash-safe commits: write-ahead log every sync")
	guardCache := flag.Int("guard-cache", 64, "compiled-guard cache capacity in entries (0 disables)")
	timeout := flag.Duration("timeout", 30*time.Second, "per-request deadline")
	maxInflight := flag.Int("max-inflight", 0, "admitted concurrent requests (0 = GOMAXPROCS)")
	maxBody := flag.Int64("max-body", 64<<20, "request body cap in bytes")
	drain := flag.Duration("drain", 30*time.Second, "graceful shutdown grace period")
	flag.Parse()

	if err := run(*addr, *storePath, *cache, *guardCache, *durability,
		*timeout, *drain, *maxInflight, *maxBody); err != nil {
		fmt.Fprintln(os.Stderr, "xmorphd:", err)
		os.Exit(1)
	}
}

func run(addr, storePath string, cache, guardCache int, durability bool,
	timeout, drain time.Duration, maxInflight int, maxBody int64) error {
	eng, err := engine.Open(storePath,
		engine.WithCachePages(cache),
		engine.WithDurability(durability),
		engine.WithGuardCache(guardCache))
	if err != nil {
		return err
	}

	srv := &http.Server{
		Addr: addr,
		Handler: engine.NewServer(eng, engine.ServerConfig{
			RequestTimeout: timeout,
			MaxInFlight:    maxInflight,
			MaxBodyBytes:   maxBody,
		}).Handler(),
		ReadHeaderTimeout: 10 * time.Second,
	}

	errCh := make(chan error, 1)
	go func() { errCh <- srv.ListenAndServe() }()
	fmt.Fprintf(os.Stderr, "xmorphd: serving %s on %s\n", storePath, addr)

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)

	select {
	case err := <-errCh:
		eng.Close()
		return err
	case got := <-sig:
		fmt.Fprintf(os.Stderr, "xmorphd: %v, draining\n", got)
		ctx, cancel := context.WithTimeout(context.Background(), drain)
		defer cancel()
		if err := srv.Shutdown(ctx); err != nil {
			// The grace period expired with requests still running; close
			// hard so the store shutdown below is not indefinitely blocked.
			srv.Close()
		}
		if err := <-errCh; err != nil && !errors.Is(err, http.ErrServerClosed) {
			eng.Close()
			return err
		}
		if err := eng.Close(); err != nil {
			return err
		}
		fmt.Fprintln(os.Stderr, "xmorphd: store closed, bye")
		return nil
	}
}
