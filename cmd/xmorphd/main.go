// Command xmorphd serves the XMorph pipeline over HTTP — the query
// service form of the paper's architecture #1: documents are shredded
// into a store once, then query guards run against them over the wire.
//
//	xmorphd -store data.db -addr :8080
//
//	POST   /v1/docs/{name}        shred the request body (XML) as name
//	PATCH  /v1/docs/{name}        apply an edit script in place (text body,
//	                              or JSON {"update":"..."}): insert <xml>
//	                              into|before|after <path> ; delete <path> ;
//	                              replace <path> with <xml>
//	GET    /v1/docs               list shredded documents
//	GET    /v1/docs/{name}/shape  print a document's adorned shape
//	DELETE /v1/docs/{name}        drop a document
//	POST   /v1/query              {"doc","guard"[,"query","format","stream","indent"]}
//	                              (?explain=1 embeds the span tree)
//	GET    /metrics               obs registry snapshot (?format=json)
//	GET    /debug/traces          retained request traces (/{id} for one tree)
//	GET    /debug/pprof/          runtime profiles
//
// Every request runs under a deadline; load beyond -max-inflight is
// refused with 429 + Retry-After. Requests are traced 1-in--trace-sample
// (ID from X-Request-Id or generated) and logged as one JSON line each;
// traces slower than -slow-query-ms are always retained for /debug/traces.
// SIGINT/SIGTERM drain gracefully: in-flight requests finish (up to
// -drain), then the store syncs and closes.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"xmorph/internal/cluster"
	"xmorph/internal/engine"
)

func main() {
	addr := flag.String("addr", ":8080", "listen address")
	storePath := flag.String("store", "xmorph.db", "store file for shredded documents (a directory of per-shard files when -shards/-replicas select cluster mode)")
	cache := flag.Int("cache", 256, "buffer pool size in pages (per shard in cluster mode)")
	durability := flag.Bool("durability", false, "crash-safe commits: write-ahead log every sync")
	shards := flag.Int("shards", 1, "shard the store across N engines on a consistent-hash ring (>1 selects cluster mode)")
	replicas := flag.Int("replicas", 0, "read replicas per shard fed by WAL shipping (>0 selects cluster mode)")
	guardCache := flag.Int("guard-cache", 64, "compiled-guard cache capacity in entries (0 disables)")
	timeout := flag.Duration("timeout", 30*time.Second, "per-request deadline")
	maxInflight := flag.Int("max-inflight", 0, "admitted concurrent requests (0 = GOMAXPROCS)")
	maxBody := flag.Int64("max-body", 64<<20, "request body cap in bytes")
	drain := flag.Duration("drain", 30*time.Second, "graceful shutdown grace period")
	traceSample := flag.Int("trace-sample", 1, "trace 1 in N requests (negative disables tracing)")
	slowMS := flag.Int("slow-query-ms", 250, "retain traces of requests at least this slow (negative disables)")
	traceRing := flag.Int("trace-ring", 128, "recent traces retained for /debug/traces")
	slowRing := flag.Int("slow-ring", 32, "slow traces retained for /debug/traces")
	accessLog := flag.String("access-log", "stderr", `access-log destination: "stderr", "off", or a file path`)
	flag.Parse()

	logger, logClose, err := openAccessLog(*accessLog)
	if err != nil {
		fmt.Fprintln(os.Stderr, "xmorphd:", err)
		os.Exit(1)
	}
	if logClose != nil {
		defer logClose()
	}

	cfg := engine.ServerConfig{
		RequestTimeout:     *timeout,
		MaxInFlight:        *maxInflight,
		MaxBodyBytes:       *maxBody,
		TraceSample:        *traceSample,
		SlowQueryThreshold: time.Duration(*slowMS) * time.Millisecond,
		TraceRingSize:      *traceRing,
		SlowRingSize:       *slowRing,
		AccessLog:          logger,
	}
	if err := run(*addr, *storePath, *cache, *guardCache, *shards, *replicas, *durability, *drain, cfg); err != nil {
		fmt.Fprintln(os.Stderr, "xmorphd:", err)
		os.Exit(1)
	}
}

// openAccessLog resolves the -access-log flag into a JSON slog logger
// (nil when logging is off) plus a closer for the file form.
func openAccessLog(dest string) (*slog.Logger, func() error, error) {
	var w io.Writer
	var closer func() error
	switch dest {
	case "off", "":
		return nil, nil, nil
	case "stderr":
		w = os.Stderr
	default:
		f, err := os.OpenFile(dest, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
		if err != nil {
			return nil, nil, fmt.Errorf("open access log: %w", err)
		}
		w = f
		closer = f.Close
	}
	return slog.New(slog.NewJSONHandler(w, nil)), closer, nil
}

// openBackend builds the verb surface the server fronts: a single
// engine by default, a sharded cluster when -shards/-replicas ask for
// one. The HTTP surface is identical either way — the handlers only
// see engine.Backend.
func openBackend(storePath string, cache, guardCache, shards, replicas int, durability bool) (engine.Backend, string, error) {
	if shards <= 1 && replicas <= 0 {
		eng, err := engine.Open(storePath,
			engine.WithCachePages(cache),
			engine.WithDurability(durability),
			engine.WithGuardCache(guardCache))
		if err != nil {
			return nil, "", err
		}
		return eng, storePath, nil
	}
	// Cluster mode: -store names a directory holding one file per shard
	// leader (replicas are memory stores fed by WAL shipping).
	if err := os.MkdirAll(storePath, 0o755); err != nil {
		return nil, "", err
	}
	cl, err := cluster.New(cluster.Config{
		Shards:     shards,
		Replicas:   replicas,
		Dir:        storePath,
		Durability: durability,
		CachePages: cache,
		EngineOpts: []engine.Option{engine.WithGuardCache(guardCache)},
	})
	if err != nil {
		return nil, "", err
	}
	desc := fmt.Sprintf("%s (%d shards x %d replicas)", storePath, shards, replicas)
	return cl, desc, nil
}

func run(addr, storePath string, cache, guardCache, shards, replicas int, durability bool,
	drain time.Duration, cfg engine.ServerConfig) error {
	eng, desc, err := openBackend(storePath, cache, guardCache, shards, replicas, durability)
	if err != nil {
		return err
	}

	srv := &http.Server{
		Addr:              addr,
		Handler:           engine.NewServer(eng, cfg).Handler(),
		ReadHeaderTimeout: 10 * time.Second,
	}

	errCh := make(chan error, 1)
	go func() { errCh <- srv.ListenAndServe() }()
	fmt.Fprintf(os.Stderr, "xmorphd: serving %s on %s\n", desc, addr)

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)

	select {
	case err := <-errCh:
		eng.Close()
		return err
	case got := <-sig:
		fmt.Fprintf(os.Stderr, "xmorphd: %v, draining\n", got)
		ctx, cancel := context.WithTimeout(context.Background(), drain)
		defer cancel()
		if err := srv.Shutdown(ctx); err != nil {
			// The grace period expired with requests still running; close
			// hard so the store shutdown below is not indefinitely blocked.
			srv.Close()
		}
		if err := <-errCh; err != nil && !errors.Is(err, http.ErrServerClosed) {
			eng.Close()
			return err
		}
		if err := eng.Close(); err != nil {
			return err
		}
		fmt.Fprintln(os.Stderr, "xmorphd: store closed, bye")
		return nil
	}
}
