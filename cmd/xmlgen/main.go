// Command xmlgen emits the synthetic datasets the benchmarks run on:
// XMark-like auction data, DBLP-like bibliographies, and NASA-like
// astronomy catalogs (the paper's three corpora).
//
// Usage:
//
//	xmlgen -dataset xmark -factor 0.1 -o xmark.xml
//	xmlgen -dataset dblp -pubs 10000 -o dblp.xml
//	xmlgen -dataset nasa -datasets 500 -o nasa.xml
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"

	"xmorph/internal/gen/dblp"
	"xmorph/internal/gen/nasa"
	"xmorph/internal/gen/xmark"
	"xmorph/internal/xmltree"
)

func main() {
	dataset := flag.String("dataset", "xmark", "dataset to generate: xmark, dblp, or nasa")
	factor := flag.Float64("factor", 0.01, "XMark benchmark factor")
	pubs := flag.Int("pubs", 1000, "DBLP publication count")
	datasets := flag.Int("datasets", 100, "NASA dataset count")
	seed := flag.Int64("seed", 42, "generator seed")
	out := flag.String("o", "", "output file (default stdout)")
	indent := flag.Bool("indent", false, "pretty-print")
	flag.Parse()

	var doc *xmltree.Document
	switch *dataset {
	case "xmark":
		doc = xmark.Generate(xmark.Config{Factor: *factor, Seed: *seed})
	case "dblp":
		doc = dblp.Generate(dblp.Config{Publications: *pubs, Seed: *seed})
	case "nasa":
		doc = nasa.Generate(nasa.Config{Datasets: *datasets, Seed: *seed})
	default:
		fmt.Fprintf(os.Stderr, "xmlgen: unknown dataset %q (xmark, dblp, nasa)\n", *dataset)
		os.Exit(2)
	}

	w := bufio.NewWriter(os.Stdout)
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fmt.Fprintln(os.Stderr, "xmlgen:", err)
			os.Exit(1)
		}
		defer f.Close()
		w = bufio.NewWriter(f)
	}
	if err := doc.WriteXML(w, *indent); err != nil {
		fmt.Fprintln(os.Stderr, "xmlgen:", err)
		os.Exit(1)
	}
	if err := w.Flush(); err != nil {
		fmt.Fprintln(os.Stderr, "xmlgen:", err)
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "xmlgen: %s with %d nodes, %d types\n", *dataset, doc.Size(), len(doc.Types()))
}
