// Command xmorphbench regenerates every table and figure of the paper's
// evaluation (Section IX). Each experiment prints the same series the
// paper plots; EXPERIMENTS.md records the expected shapes.
//
// Usage:
//
//	xmorphbench                  # run everything at default scale
//	xmorphbench -exp fig10       # one experiment
//	xmorphbench -exp fig14 -dblp 2000,4000,8000,16000
//	xmorphbench -factors 0.05,0.1 -exp fig10
//	xmorphbench -exp hotpath -json BENCH_hotpath.json
//	xmorphbench -exp concurrency -json BENCH_concurrency.json
//	xmorphbench -exp concurrency -clients 1,4 -conc-factors 0.05 -conc-window 1s
package main

import (
	"flag"
	"fmt"
	"net/http"
	_ "net/http/pprof"
	"os"
	"strconv"
	"strings"
	"time"

	"xmorph/internal/bench"
	"xmorph/internal/obs"
)

func main() {
	exp := flag.String("exp", "all", "experiment: table1, fig10, fig11, fig12, fig13, fig14, fig15, fig16, shred, ablation, hotpath, concurrency, cluster, serve, stream, update, all")
	factors := flag.String("factors", "", "comma-separated XMark factors (default 0.01..0.05)")
	hotFactors := flag.String("hotpath-factors", "", "comma-separated XMark factors for -exp hotpath (default 0.2,1.0)")
	jsonOut := flag.String("json", "", "with -exp hotpath/concurrency/serve/stream: also write the report to this file (e.g. BENCH_stream.json)")
	concFactors := flag.String("conc-factors", "", "comma-separated XMark factors for -exp concurrency (default 0.2,1.0)")
	streamFactors := flag.String("stream-factors", "", "comma-separated XMark factors for -exp stream (default 0.2,1.0)")
	updateFactors := flag.String("update-factors", "", "comma-separated XMark factors for -exp update (default 0.2,1.0)")
	clients := flag.String("clients", "", "comma-separated client counts for -exp concurrency (default 1,2,4,8)")
	concWindow := flag.Duration("conc-window", 0, "measurement window per concurrency cell (default 3s)")
	concCache := flag.Int("conc-cache", 0, "buffer pool pages for -exp concurrency (default 4096)")
	serveClients := flag.String("serve-clients", "", "comma-separated client counts for -exp serve (default 1,2,4,8)")
	serveWindow := flag.Duration("serve-window", 0, "measurement window per serve cell (default 3s)")
	serveFactor := flag.Float64("serve-factor", 0, "XMark factor for the -exp serve document (default 0.2)")
	serveInflight := flag.Int("serve-inflight", 0, "daemon admission cap for -exp serve (default GOMAXPROCS)")
	serveSample := flag.Int("serve-sample", 0, "trace 1 in N requests on the obs-on daemon for -exp serve (default 1 = every request; negative disables)")
	serveSlowMS := flag.Int("serve-slow-ms", 0, "obs-on daemon slow-query threshold in ms for -exp serve (default 250; negative disables)")
	serveWriters := flag.Int("serve-writers", 0, "dedicated shred-writer goroutines per serve cell; clients then run a pure query mix and query p99 during shreds is reported separately (default 0 = classic mixed workload)")
	clusterShards := flag.String("cluster-shards", "", "comma-separated shard counts for -exp cluster (default 1,2,4)")
	clusterReplicas := flag.Int("cluster-replicas", 0, "read replicas per shard for -exp cluster's replica variant (default 1)")
	clusterDocs := flag.Int("cluster-docs", 0, "document count for -exp cluster (default 16)")
	clusterFactor := flag.Float64("cluster-factor", 0, "XMark factor per -exp cluster document (default 0.01)")
	clusterClients := flag.Int("cluster-clients", 0, "concurrent readers per -exp cluster cell (default 4)")
	clusterWindow := flag.Duration("cluster-window", 0, "measurement window per -exp cluster cell (default 2s)")
	clusterCache := flag.Int("cluster-cache", 0, "buffer pool pages per shard for -exp cluster (default 1024)")
	clusterLatency := flag.Duration("cluster-latency", 0, "modeled device read latency per page for -exp cluster (default 100µs; negative disables)")
	dblpSizes := flag.String("dblp", "", "comma-separated DBLP publication counts")
	seed := flag.Int64("seed", 42, "generator seed")
	cache := flag.Int("cache", 128, "store buffer pool pages")
	durability := flag.Bool("durability", false, "open every store with the write-ahead log enabled (crash-safe configuration)")
	workdir := flag.String("workdir", "", "directory for store files (default: temp)")
	debugAddr := flag.String("debug-addr", "", "serve net/http/pprof and /metrics on this address (e.g. localhost:6060)")
	flag.Parse()

	if *debugAddr != "" {
		// pprof registers itself on DefaultServeMux via the blank import.
		http.HandleFunc("/metrics", metricsHandler)
		go func() {
			if err := http.ListenAndServe(*debugAddr, nil); err != nil {
				fmt.Fprintln(os.Stderr, "xmorphbench: debug server:", err)
			}
		}()
	}

	cfg := bench.DefaultConfig()
	cfg.Seed = *seed
	cfg.CachePages = *cache
	cfg.Durability = *durability
	cfg.WorkDir = *workdir
	if *factors != "" {
		fs, err := parseFloats(*factors)
		if err != nil {
			fatal(err)
		}
		cfg.XMarkFactors = fs
	}
	if *dblpSizes != "" {
		ns, err := parseInts(*dblpSizes)
		if err != nil {
			fatal(err)
		}
		cfg.DBLPSizes = ns
	}
	if *hotFactors != "" {
		fs, err := parseFloats(*hotFactors)
		if err != nil {
			fatal(err)
		}
		cfg.HotpathFactors = fs
	}
	if *concFactors != "" {
		fs, err := parseFloats(*concFactors)
		if err != nil {
			fatal(err)
		}
		cfg.ConcFactors = fs
	}
	if *streamFactors != "" {
		fs, err := parseFloats(*streamFactors)
		if err != nil {
			fatal(err)
		}
		cfg.StreamFactors = fs
	}
	if *updateFactors != "" {
		fs, err := parseFloats(*updateFactors)
		if err != nil {
			fatal(err)
		}
		cfg.UpdateFactors = fs
	}
	if *clients != "" {
		ns, err := parseInts(*clients)
		if err != nil {
			fatal(err)
		}
		cfg.ConcClients = ns
	}
	cfg.ConcWindow = *concWindow
	cfg.ConcCachePages = *concCache
	if *serveClients != "" {
		ns, err := parseInts(*serveClients)
		if err != nil {
			fatal(err)
		}
		cfg.ServeClients = ns
	}
	cfg.ServeWindow = *serveWindow
	cfg.ServeFactor = *serveFactor
	cfg.ServeMaxInflight = *serveInflight
	cfg.ServeSample = *serveSample
	cfg.ServeSlowMS = *serveSlowMS
	cfg.ServeWriters = *serveWriters
	if *clusterShards != "" {
		ns, err := parseInts(*clusterShards)
		if err != nil {
			fatal(err)
		}
		cfg.ClusterShards = ns
	}
	cfg.ClusterReplicas = *clusterReplicas
	cfg.ClusterDocs = *clusterDocs
	cfg.ClusterFactor = *clusterFactor
	cfg.ClusterClients = *clusterClients
	cfg.ClusterWindow = *clusterWindow
	cfg.ClusterCachePages = *clusterCache
	cfg.ClusterReadLatency = *clusterLatency

	run := func(name string) bool { return *exp == "all" || *exp == name }

	if run("table1") {
		fmt.Println(bench.Table1())
	}

	needFig10 := run("fig10") || run("fig11") || run("fig12") || run("fig13") || run("shred")
	if needFig10 {
		start := time.Now()
		rows, err := bench.RunFig10(cfg)
		if err != nil {
			fatal(err)
		}
		if run("fig10") || run("shred") {
			fmt.Println(bench.Fig10Table(rows))
		}
		if run("fig11") {
			fmt.Println(bench.Fig11Table(rows))
		}
		if run("fig12") {
			fmt.Println(bench.Fig12Table(rows))
		}
		if run("fig13") {
			fmt.Println(bench.Fig13Table(rows))
		}
		fmt.Fprintf(os.Stderr, "fig10 sweep took %v\n", time.Since(start).Round(time.Millisecond))
	}

	if run("fig14") {
		rows, err := bench.RunFig14(cfg)
		if err != nil {
			fatal(err)
		}
		fmt.Println(bench.Fig14Table(rows))
	}

	if run("fig15") {
		rows, err := bench.RunFig15(cfg)
		if err != nil {
			fatal(err)
		}
		fmt.Println(bench.Fig15Table(rows))
	}

	if run("fig16") {
		rows, err := bench.RunFig16(cfg)
		if err != nil {
			fatal(err)
		}
		fmt.Println(bench.Fig16Table(rows))
	}

	if run("ablation") {
		rows, err := bench.RunAblations(cfg)
		if err != nil {
			fatal(err)
		}
		fmt.Println(bench.AblationTable(rows))
	}

	// hotpath is opt-in (not part of "all"): its default factors shred an
	// XMark factor-1 document twice and run for a couple of minutes.
	if *exp == "hotpath" {
		start := time.Now()
		rows, err := bench.RunHotpath(cfg)
		if err != nil {
			fatal(err)
		}
		fmt.Println(bench.HotpathTable(rows))
		if *jsonOut != "" {
			if err := bench.HotpathReportFor(cfg, rows).WriteJSON(*jsonOut); err != nil {
				fatal(err)
			}
			fmt.Fprintf(os.Stderr, "wrote %s\n", *jsonOut)
		}
		fmt.Fprintf(os.Stderr, "hotpath suite took %v\n", time.Since(start).Round(time.Millisecond))
	}

	// concurrency is opt-in (not part of "all"): its default factors shred
	// an XMark factor-1 document and run fixed multi-second windows.
	if *exp == "concurrency" {
		start := time.Now()
		rows, err := bench.RunConcurrency(cfg)
		if err != nil {
			fatal(err)
		}
		fmt.Println(bench.ConcurrencyTable(rows))
		if *jsonOut != "" {
			if err := bench.ConcurrencyReportFor(cfg, rows).WriteJSON(*jsonOut); err != nil {
				fatal(err)
			}
			fmt.Fprintf(os.Stderr, "wrote %s\n", *jsonOut)
		}
		fmt.Fprintf(os.Stderr, "concurrency suite took %v\n", time.Since(start).Round(time.Millisecond))
	}

	// stream is opt-in (not part of "all"): its default factors shred an
	// XMark factor-1 document and run the full transformation both ways.
	if *exp == "stream" {
		start := time.Now()
		rows, err := bench.RunStream(cfg)
		if err != nil {
			fatal(err)
		}
		fmt.Println(bench.StreamTable(rows))
		if *jsonOut != "" {
			if err := bench.StreamReportFor(cfg, rows).WriteJSON(*jsonOut); err != nil {
				fatal(err)
			}
			fmt.Fprintf(os.Stderr, "wrote %s\n", *jsonOut)
		}
		fmt.Fprintf(os.Stderr, "stream suite took %v\n", time.Since(start).Round(time.Millisecond))
	}

	// update is opt-in (not part of "all"): its default factors shred an
	// XMark factor-1 document three times (patch setup, baseline setup,
	// baseline re-shred).
	if *exp == "update" {
		start := time.Now()
		rows, err := bench.RunUpdate(cfg)
		if err != nil {
			fatal(err)
		}
		fmt.Println(bench.UpdateTable(rows))
		if *jsonOut != "" {
			if err := bench.UpdateReportFor(cfg, rows).WriteJSON(*jsonOut); err != nil {
				fatal(err)
			}
			fmt.Fprintf(os.Stderr, "wrote %s\n", *jsonOut)
		}
		fmt.Fprintf(os.Stderr, "update suite took %v\n", time.Since(start).Round(time.Millisecond))
	}

	// cluster is opt-in (not part of "all"): each cell builds a full
	// sharded cluster and drives it for a fixed multi-second window.
	if *exp == "cluster" {
		start := time.Now()
		rows, err := bench.RunCluster(cfg)
		if err != nil {
			fatal(err)
		}
		fmt.Println(bench.ClusterTable(rows))
		if *jsonOut != "" {
			if err := bench.ClusterReportFor(cfg, rows).WriteJSON(*jsonOut); err != nil {
				fatal(err)
			}
			fmt.Fprintf(os.Stderr, "wrote %s\n", *jsonOut)
		}
		fmt.Fprintf(os.Stderr, "cluster suite took %v\n", time.Since(start).Round(time.Millisecond))
	}

	// serve is opt-in (not part of "all"): it starts the xmorphd handler
	// on a loopback listener and drives it for fixed multi-second windows.
	if *exp == "serve" {
		start := time.Now()
		rows, err := bench.RunServe(cfg)
		if err != nil {
			fatal(err)
		}
		fmt.Println(bench.ServeTable(rows))
		if *jsonOut != "" {
			if err := bench.ServeReportFor(cfg, rows).WriteJSON(*jsonOut); err != nil {
				fatal(err)
			}
			fmt.Fprintf(os.Stderr, "wrote %s\n", *jsonOut)
		}
		fmt.Fprintf(os.Stderr, "serve suite took %v\n", time.Since(start).Round(time.Millisecond))
	}
}

// metricsHandler serves the default registry snapshot: text by default,
// JSON with ?format=json.
func metricsHandler(w http.ResponseWriter, r *http.Request) {
	snap := obs.Default.Snapshot()
	if r.URL.Query().Get("format") == "json" {
		raw, err := snap.JSON()
		if err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		w.Write(raw)
		return
	}
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	fmt.Fprint(w, snap.Text())
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "xmorphbench:", err)
	os.Exit(1)
}

func parseFloats(s string) ([]float64, error) {
	var out []float64
	for _, p := range strings.Split(s, ",") {
		f, err := strconv.ParseFloat(strings.TrimSpace(p), 64)
		if err != nil {
			return nil, fmt.Errorf("bad factor %q", p)
		}
		out = append(out, f)
	}
	return out, nil
}

func parseInts(s string) ([]int, error) {
	var out []int
	for _, p := range strings.Split(s, ",") {
		n, err := strconv.Atoi(strings.TrimSpace(p))
		if err != nil {
			return nil, fmt.Errorf("bad count %q", p)
		}
		out = append(out, n)
	}
	return out, nil
}
