package main

import (
	"encoding/json"
	"net/http/httptest"
	"strings"
	"testing"

	"xmorph/internal/obs"
)

func TestParseFloats(t *testing.T) {
	fs, err := parseFloats("0.1, 0.2,0.5")
	if err != nil || len(fs) != 3 || fs[2] != 0.5 {
		t.Errorf("parseFloats = %v, %v", fs, err)
	}
	if _, err := parseFloats("a,b"); err == nil {
		t.Error("bad floats accepted")
	}
}

func TestParseInts(t *testing.T) {
	ns, err := parseInts("100, 200")
	if err != nil || len(ns) != 2 || ns[1] != 200 {
		t.Errorf("parseInts = %v, %v", ns, err)
	}
	if _, err := parseInts("1,x"); err == nil {
		t.Error("bad ints accepted")
	}
}

func TestMetricsHandler(t *testing.T) {
	obs.Default.Counter("bench_test_hits").Add(7)

	rec := httptest.NewRecorder()
	metricsHandler(rec, httptest.NewRequest("GET", "/metrics", nil))
	if !strings.Contains(rec.Body.String(), "bench_test_hits 7") {
		t.Errorf("text metrics missing counter:\n%s", rec.Body.String())
	}

	rec = httptest.NewRecorder()
	metricsHandler(rec, httptest.NewRequest("GET", "/metrics?format=json", nil))
	if ct := rec.Header().Get("Content-Type"); ct != "application/json" {
		t.Errorf("json content type = %q", ct)
	}
	var parsed map[string]any
	if err := json.Unmarshal(rec.Body.Bytes(), &parsed); err != nil {
		t.Errorf("metrics json does not parse: %v", err)
	}
}
