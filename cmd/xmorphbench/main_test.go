package main

import "testing"

func TestParseFloats(t *testing.T) {
	fs, err := parseFloats("0.1, 0.2,0.5")
	if err != nil || len(fs) != 3 || fs[2] != 0.5 {
		t.Errorf("parseFloats = %v, %v", fs, err)
	}
	if _, err := parseFloats("a,b"); err == nil {
		t.Error("bad floats accepted")
	}
}

func TestParseInts(t *testing.T) {
	ns, err := parseInts("100, 200")
	if err != nil || len(ns) != 2 || ns[1] != 200 {
		t.Errorf("parseInts = %v, %v", ns, err)
	}
	if _, err := parseInts("1,x"); err == nil {
		t.Error("bad ints accepted")
	}
}
