// Command xmorph is the stand-alone XMorph 2.0 query-guard tool (the
// paper's architecture #1): it shreds XML documents into a store, runs
// query guards against them, and prints the transformed XML together with
// the label-to-type and information-loss reports of Section VIII.
//
// Usage:
//
//	xmorph -store data.db shred name doc.xml
//	xmorph -store data.db docs
//	xmorph -store data.db run name 'MORPH author [ name book [ title ] ]'
//	xmorph -store data.db check name 'MUTATE name [ author ]'
//	xmorph -store data.db shape name
//	xmorph run-file doc.xml 'MORPH author [ name ]'
//	xmorph explain 'MORPH author [ name publisher [ name ] ]'
package main

import (
	"flag"
	"fmt"
	"os"

	"xmorph/internal/algebra"
	"xmorph/internal/core"
	"xmorph/internal/guard"
	"xmorph/internal/infer"
	"xmorph/internal/kvstore"
	"xmorph/internal/logical"
	"xmorph/internal/store"
	"xmorph/internal/xmltree"
)

func main() {
	storePath := flag.String("store", "xmorph.db", "store file for shredded documents")
	cache := flag.Int("cache", 256, "buffer pool size in pages")
	indent := flag.Bool("indent", true, "pretty-print output XML")
	quiet := flag.Bool("quiet", false, "suppress the reports, print only XML")
	verify := flag.Bool("verify", false, "run-file: empirically compare closest graphs and quantify loss")
	stream := flag.Bool("stream", false, "run: stream output without materializing the result tree")
	flag.Usage = usage
	flag.Parse()

	args := flag.Args()
	if len(args) == 0 {
		usage()
		os.Exit(2)
	}
	if err := dispatch(options{store: *storePath, cache: *cache, indent: *indent, quiet: *quiet, verify: *verify, stream: *stream}, args); err != nil {
		fmt.Fprintln(os.Stderr, "xmorph:", err)
		os.Exit(1)
	}
}

func usage() {
	fmt.Fprint(os.Stderr, `xmorph - shape-polymorphic XML transformation (XMorph 2.0)

commands:
  shred <name> <file.xml>   shred a document into the store
  docs                      list shredded documents
  shape <name>              print a document's adorned shape
  run <name> <guard>        run a query guard against a stored document
  drop <name>               remove a shredded document
  check <name> <guard>      type-check a guard without rendering
  run-file <file.xml> <guard>   one-shot: parse, transform, print
  explain <guard>           print the guard's algebra tree
  infer <query>             infer the MORPH guard an XQuery query needs
  query <name> <guard> <xquery>   guarded query over a stored document

flags:
`)
	flag.PrintDefaults()
}

// options carries the CLI flags into dispatch (kept testable).
type options struct {
	store  string
	cache  int
	indent bool
	quiet  bool
	verify bool
	stream bool
}

func dispatch(o options, args []string) error {
	storePath, cache, indent, quiet := o.store, o.cache, o.indent, o.quiet
	open := func() (*store.Store, error) {
		return store.Open(storePath, &kvstore.Options{CachePages: cache})
	}
	switch args[0] {
	case "shred":
		if len(args) != 3 {
			return fmt.Errorf("usage: shred <name> <file.xml>")
		}
		f, err := os.Open(args[2])
		if err != nil {
			return err
		}
		defer f.Close()
		st, err := open()
		if err != nil {
			return err
		}
		defer st.Close()
		info, err := st.Shred(args[1], f)
		if err != nil {
			return err
		}
		fmt.Printf("shredded %q: %d nodes, %d types\n", info.Name, info.Nodes, info.Types)
		return nil

	case "docs":
		st, err := open()
		if err != nil {
			return err
		}
		defer st.Close()
		names, err := st.Documents()
		if err != nil {
			return err
		}
		for _, n := range names {
			fmt.Println(n)
		}
		return nil

	case "shape":
		if len(args) != 2 {
			return fmt.Errorf("usage: shape <name>")
		}
		st, err := open()
		if err != nil {
			return err
		}
		defer st.Close()
		sh, err := st.Shape(args[1])
		if err != nil {
			return err
		}
		fmt.Print(sh.String())
		return nil

	case "run":
		if len(args) != 3 {
			return fmt.Errorf("usage: run <name> <guard>")
		}
		st, err := open()
		if err != nil {
			return err
		}
		defer st.Close()
		if o.stream {
			sh, err := st.Shape(args[1])
			if err != nil {
				return err
			}
			checked, err := core.Check(args[2], sh)
			if err != nil {
				return err
			}
			doc, err := st.Doc(args[1])
			if err != nil {
				return err
			}
			if !quiet {
				fmt.Fprintf(os.Stderr, "-- information-loss report --\n%s\n", checked.Loss)
			}
			n, err := checked.Stream(doc, os.Stdout)
			if err != nil {
				return err
			}
			if !quiet {
				fmt.Fprintf(os.Stderr, "\n-- streamed %d nodes --\n", n)
			}
			return nil
		}
		res, err := core.TransformStored(args[2], st, args[1])
		if err != nil {
			return err
		}
		if !quiet {
			fmt.Fprintf(os.Stderr, "-- label-to-type report --\n%s", res.LabelReport())
			fmt.Fprintf(os.Stderr, "-- information-loss report --\n%s\n", res.Loss)
			fmt.Fprintf(os.Stderr, "-- compile %v, render %v --\n", res.CompileTime, res.RenderTime)
		}
		return res.Output.WriteXML(os.Stdout, indent)

	case "drop":
		if len(args) != 2 {
			return fmt.Errorf("usage: drop <name>")
		}
		st, err := open()
		if err != nil {
			return err
		}
		defer st.Close()
		if err := st.Drop(args[1]); err != nil {
			return err
		}
		fmt.Printf("dropped %q\n", args[1])
		return nil

	case "check":
		if len(args) != 3 {
			return fmt.Errorf("usage: check <name> <guard>")
		}
		st, err := open()
		if err != nil {
			return err
		}
		defer st.Close()
		sh, err := st.Shape(args[1])
		if err != nil {
			return err
		}
		checked, err := core.Check(args[2], sh)
		if err != nil {
			return err
		}
		fmt.Printf("-- label-to-type report --\n%s", checked.LabelReport())
		fmt.Printf("-- information-loss report --\n%s\n", checked.Loss)
		fmt.Printf("-- target shape --\n%s", checked.Plan.ComposedTarget())
		return nil

	case "run-file":
		if len(args) != 3 {
			return fmt.Errorf("usage: run-file <file.xml> <guard>")
		}
		f, err := os.Open(args[1])
		if err != nil {
			return err
		}
		doc, err := xmltree.Parse(f)
		f.Close()
		if err != nil {
			return err
		}
		res, err := core.Transform(args[2], doc)
		if err != nil {
			return err
		}
		if !quiet {
			fmt.Fprintf(os.Stderr, "-- information-loss report --\n%s\n", res.Loss)
		}
		if o.verify {
			r := core.Verify(doc, res.Output)
			fmt.Fprintf(os.Stderr, "-- empirical verification --\n")
			fmt.Fprintf(os.Stderr, "source: %d vertices, %d closest edges\n", r.SrcVertices, r.SrcEdges)
			fmt.Fprintf(os.Stderr, "lost: %d vertices, %d edges (%.1f%% of the source)\n", r.LostVertices, r.LostEdges, r.LossPct())
			fmt.Fprintf(os.Stderr, "created: %d vertices, %d edges (%.1f%% of the output is new)\n", r.CreatedVertices, r.CreatedEdges, r.CreatedPct())
		}
		return res.Output.WriteXML(os.Stdout, indent)

	case "query":
		if len(args) != 4 {
			return fmt.Errorf("usage: query <name> <guard> <xquery>")
		}
		st, err := open()
		if err != nil {
			return err
		}
		defer st.Close()
		sh, err := st.Shape(args[1])
		if err != nil {
			return err
		}
		doc, err := st.Doc(args[1])
		if err != nil {
			return err
		}
		res, err := logical.EvaluateSource(args[3], args[2], args[1], sh, doc)
		if err != nil {
			return err
		}
		if !quiet {
			fmt.Fprintf(os.Stderr, "-- projection: %d of %d target types, %d rendered nodes --\n",
				res.KeptTypes, res.TotalTypes, res.RenderedNodes)
		}
		fmt.Println(res.Answer)
		return nil

	case "infer":
		if len(args) != 2 {
			return fmt.Errorf("usage: infer <query>")
		}
		g, err := infer.FromQuery(args[1])
		if err != nil {
			return err
		}
		fmt.Println(g)
		return nil

	case "explain":
		if len(args) != 2 {
			return fmt.Errorf("usage: explain <guard>")
		}
		prog, err := guard.Parse(args[1])
		if err != nil {
			return err
		}
		fmt.Print(algebra.FromProgram(prog).String())
		return nil
	}
	return fmt.Errorf("unknown command %q (run with no arguments for usage)", args[0])
}
