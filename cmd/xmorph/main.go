// Command xmorph is the stand-alone XMorph 2.0 query-guard tool (the
// paper's architecture #1): it shreds XML documents into a store, runs
// query guards against them, and prints the transformed XML together with
// the label-to-type and information-loss reports of Section VIII.
//
// Usage:
//
//	xmorph -store data.db shred name doc.xml
//	xmorph -store data.db docs
//	xmorph -store data.db run name 'MORPH author [ name book [ title ] ]'
//	xmorph -store data.db update name 'insert <note>x</note> into dblp.article'
//	xmorph -store data.db check name 'MUTATE name [ author ]'
//	xmorph -store data.db shape name
//	xmorph run-file doc.xml 'MORPH author [ name ]'
//	xmorph explain 'MORPH author [ name publisher [ name ] ]'
//	xmorph -store data.db run name 'MORPH title' --trace
//
// Every command drives the unified engine facade (internal/engine) — the
// same pipeline the xmorphd daemon serves.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"
	"time"

	"xmorph/internal/engine"
	"xmorph/internal/obs"
	"xmorph/internal/plan"
)

func main() {
	storePath := flag.String("store", "xmorph.db", "store file for shredded documents")
	cache := flag.Int("cache", 256, "buffer pool size in pages")
	durability := flag.Bool("durability", false, "crash-safe commits: write-ahead log every Sync (see DESIGN.md Durability)")
	indent := flag.Bool("indent", true, "pretty-print output XML")
	quiet := flag.Bool("quiet", false, "suppress the reports, print only XML")
	verify := flag.Bool("verify", false, "run-file: empirically compare closest graphs and quantify loss")
	stream := flag.Bool("stream", false, "run: stream output without materializing the result tree")
	trace := flag.Bool("trace", false, "print the pipeline span tree to stderr")
	explain := flag.Bool("explain", false, "print the pipeline span tree as JSON to stderr")
	slowMS := flag.Int("slow-query-ms", -1, "print the span tree only when the command takes at least this many ms (negative: always)")
	metrics := flag.Bool("metrics", false, "dump the metrics registry snapshot to stderr")
	metricsFormat := flag.String("metrics-format", "text", "metrics dump format: text or json")
	flag.Usage = usage
	flag.Parse()

	o := options{store: *storePath, cache: *cache, durability: *durability,
		indent: *indent, quiet: *quiet,
		verify: *verify, stream: *stream,
		trace: *trace, explain: *explain, slowMS: *slowMS,
		metrics: *metrics, metricsFormat: *metricsFormat}
	args, err := extractTrailingFlags(flag.Args(), &o)
	if err != nil {
		fmt.Fprintln(os.Stderr, "xmorph:", err)
		os.Exit(2)
	}
	if len(args) == 0 {
		usage()
		os.Exit(2)
	}
	if err := dispatch(o, args); err != nil {
		fmt.Fprintln(os.Stderr, "xmorph:", err)
		var ue usageError
		if errors.As(err, &ue) {
			os.Exit(2)
		}
		os.Exit(1)
	}
}

func usage() {
	fmt.Fprint(os.Stderr, `xmorph - shape-polymorphic XML transformation (XMorph 2.0)

commands:
  shred <name> <file.xml>   shred a document into the store
  docs                      list shredded documents
  shape <name>              print a document's adorned shape
  run <name> <guard>        run a query guard against a stored document
  drop <name>               remove a shredded document
  update <name> <script>    apply an edit script in place (@file reads it
                            from a file): insert <xml> into|before|after
                            <path> ; delete <path> ; replace <path> with <xml>
  check <name> <guard>      type-check a guard without rendering
  run-file <file.xml> <guard>   one-shot: parse, transform, print
  explain <guard>           print the guard's algebra tree
  infer <query>             infer the MORPH guard an XQuery query needs
  query <name> <guard> <xquery>   guarded query over a stored document

flags:
`)
	flag.PrintDefaults()
}

// usageError marks bad invocations (wrong arity, unknown command); main
// exits 2 for these, matching the no-arguments usage path, and 1 for
// runtime failures.
type usageError struct{ msg string }

func (e usageError) Error() string { return e.msg }

func usagef(format string, args ...any) error {
	return usageError{msg: fmt.Sprintf(format, args...)}
}

// extractTrailingFlags lets the observability flags appear after the
// positional arguments (`xmorph run doc guard --trace`), where the flag
// package stops parsing. Only flags that change no command semantics are
// accepted there; anything else must precede the command.
func extractTrailingFlags(args []string, o *options) ([]string, error) {
	out := args[:0:0]
	for _, a := range args {
		if len(out) > 0 && strings.HasPrefix(a, "-") {
			switch name := strings.TrimLeft(a, "-"); {
			case name == "trace":
				o.trace = true
			case name == "explain":
				o.explain = true
			case strings.HasPrefix(name, "slow-query-ms="):
				n, err := strconv.Atoi(strings.TrimPrefix(name, "slow-query-ms="))
				if err != nil {
					return nil, usagef("bad %s: %v", a, err)
				}
				o.slowMS = n
			case name == "metrics":
				o.metrics = true
			case strings.HasPrefix(name, "metrics-format="):
				o.metricsFormat = strings.TrimPrefix(name, "metrics-format=")
			default:
				return nil, usagef("flag %s must precede the command (only --trace, --explain, --slow-query-ms, --metrics, --metrics-format may trail)", a)
			}
			continue
		}
		out = append(out, a)
	}
	return out, nil
}

// options carries the CLI flags into dispatch (kept testable).
type options struct {
	store      string
	cache      int
	durability bool
	indent     bool
	quiet      bool
	verify     bool
	stream     bool

	trace         bool
	explain       bool
	slowMS        int
	metrics       bool
	metricsFormat string
	// traceW/metricsW override the stderr sinks in tests; zeroDur
	// redacts span durations for golden comparisons.
	traceW   io.Writer
	metricsW io.Writer
	zeroDur  bool
}

func dispatch(o options, args []string) error {
	ctx := context.Background()
	indent, quiet := o.indent, o.quiet
	var opened *engine.Engine
	open := func() (*engine.Engine, error) {
		eng, err := engine.Open(o.store,
			engine.WithCachePages(o.cache),
			engine.WithDurability(o.durability))
		if err == nil {
			opened = eng
		}
		return eng, err
	}

	var tr *obs.Trace
	if o.trace || o.explain || o.slowMS > 0 {
		tr = obs.New(args[0])
	}
	root := tr.Root()
	defer func() {
		if tr != nil {
			tr.Finish()
			// With --slow-query-ms the tree only prints when the command
			// was at least that slow — the CLI twin of xmorphd's
			// slow-query retention.
			if tr.Duration() >= time.Duration(o.slowMS)*time.Millisecond {
				w := o.traceW
				if w == nil {
					w = os.Stderr
				}
				switch {
				case o.explain:
					if raw, err := tr.JSON(); err == nil {
						w.Write(raw)
						io.WriteString(w, "\n")
					}
				case o.zeroDur:
					io.WriteString(w, tr.TextZeroDurations())
				default:
					io.WriteString(w, tr.Text())
				}
			}
		}
		if o.metrics {
			dumpMetrics(o, opened)
		}
	}()

	switch args[0] {
	case "shred":
		if len(args) != 3 {
			return usagef("usage: shred <name> <file.xml>")
		}
		f, err := os.Open(args[2])
		if err != nil {
			return err
		}
		defer f.Close()
		eng, err := open()
		if err != nil {
			return err
		}
		defer eng.Close()
		info, err := eng.Shred(ctx, args[1], f, root)
		if err != nil {
			return err
		}
		fmt.Printf("shredded %q: %d nodes, %d types\n", info.Name, info.Nodes, info.Types)
		return nil

	case "docs":
		eng, err := open()
		if err != nil {
			return err
		}
		defer eng.Close()
		names, err := eng.Docs(ctx, root)
		if err != nil {
			return err
		}
		for _, n := range names {
			fmt.Println(n)
		}
		return nil

	case "shape":
		if len(args) != 2 {
			return usagef("usage: shape <name>")
		}
		eng, err := open()
		if err != nil {
			return err
		}
		defer eng.Close()
		sh, err := eng.Shape(ctx, args[1], root)
		if err != nil {
			return err
		}
		fmt.Print(sh.String())
		return nil

	case "run":
		if len(args) != 3 {
			return usagef("usage: run <name> <guard>")
		}
		eng, err := open()
		if err != nil {
			return err
		}
		defer eng.Close()
		if o.stream {
			checked, err := eng.Check(ctx, args[1], args[2], root)
			if err != nil {
				return err
			}
			if !quiet {
				fmt.Fprintf(os.Stderr, "-- information-loss report --\n%s\n", checked.Loss)
			}
			res, err := eng.Run(ctx, args[1], args[2], engine.RunOpts{Span: root, StreamTo: os.Stdout})
			if err != nil {
				return err
			}
			root.Set("pages-read", res.PagesRead)
			if !quiet {
				exec := "join-backed"
				if res.StreamExec {
					exec = "one-pass"
				}
				fmt.Fprintf(os.Stderr, "\n-- plan: %s; streamed %d nodes (%s) --\n", res.Plan, res.Streamed, exec)
			}
			return nil
		}
		res, err := eng.Run(ctx, args[1], args[2], engine.RunOpts{Span: root})
		if err != nil {
			return err
		}
		if !quiet {
			fmt.Fprintf(os.Stderr, "-- label-to-type report --\n%s", res.LabelReport())
			fmt.Fprintf(os.Stderr, "-- information-loss report --\n%s\n", res.Loss)
			fmt.Fprintf(os.Stderr, "-- compile %v, render %v --\n", res.CompileTime, res.RenderTime)
		}
		return res.Output.WriteXML(os.Stdout, indent)

	case "drop":
		if len(args) != 2 {
			return usagef("usage: drop <name>")
		}
		eng, err := open()
		if err != nil {
			return err
		}
		defer eng.Close()
		if err := eng.Drop(ctx, args[1], root); err != nil {
			return err
		}
		fmt.Printf("dropped %q\n", args[1])
		return nil

	case "update":
		if len(args) != 3 {
			return usagef("usage: update <name> <script | @file>")
		}
		script := args[2]
		if strings.HasPrefix(script, "@") {
			raw, err := os.ReadFile(script[1:])
			if err != nil {
				return err
			}
			script = string(raw)
		}
		eng, err := open()
		if err != nil {
			return err
		}
		defer eng.Close()
		info, err := eng.Update(ctx, args[1], script, root)
		if err != nil {
			return err
		}
		fmt.Printf("updated %q: %d ops, +%d/-%d nodes, %d pages written, shape %s\n",
			info.Name, info.Ops, info.NodesInserted, info.NodesDeleted,
			info.PagesWritten, info.Delta)
		return nil

	case "check":
		if len(args) != 3 {
			return usagef("usage: check <name> <guard>")
		}
		eng, err := open()
		if err != nil {
			return err
		}
		defer eng.Close()
		checked, err := eng.Check(ctx, args[1], args[2], root)
		if err != nil {
			return err
		}
		fmt.Printf("-- label-to-type report --\n%s", checked.LabelReport())
		fmt.Printf("-- information-loss report --\n%s\n", checked.Loss)
		fmt.Printf("-- streaming plan --\n%s\n", plan.Classify(checked.Plan.ComposedTarget()))
		fmt.Printf("-- target shape --\n%s", checked.Plan.ComposedTarget())
		return nil

	case "run-file":
		if len(args) != 3 {
			return usagef("usage: run-file <file.xml> <guard>")
		}
		f, err := os.Open(args[1])
		if err != nil {
			return err
		}
		res, err := engine.TransformReader(args[2], f, root)
		f.Close()
		if err != nil {
			return err
		}
		if !quiet {
			fmt.Fprintf(os.Stderr, "-- information-loss report --\n%s\n", res.Loss)
		}
		if o.verify {
			r := engine.Verify(res.Source, res.Output)
			fmt.Fprintf(os.Stderr, "-- empirical verification --\n")
			fmt.Fprintf(os.Stderr, "source: %d vertices, %d closest edges\n", r.SrcVertices, r.SrcEdges)
			fmt.Fprintf(os.Stderr, "lost: %d vertices, %d edges (%.1f%% of the source)\n", r.LostVertices, r.LostEdges, r.LossPct())
			fmt.Fprintf(os.Stderr, "created: %d vertices, %d edges (%.1f%% of the output is new)\n", r.CreatedVertices, r.CreatedEdges, r.CreatedPct())
		}
		return res.Output.WriteXML(os.Stdout, indent)

	case "query":
		if len(args) != 4 {
			return usagef("usage: query <name> <guard> <xquery>")
		}
		eng, err := open()
		if err != nil {
			return err
		}
		defer eng.Close()
		res, err := eng.Query(ctx, args[1], args[2], args[3], engine.QueryOpts{Span: root})
		if err != nil {
			return err
		}
		if !quiet {
			fmt.Fprintf(os.Stderr, "-- projection: %d of %d target types, %d rendered nodes --\n",
				res.KeptTypes, res.TotalTypes, res.RenderedNodes)
		}
		fmt.Println(res.Answer)
		return nil

	case "infer":
		if len(args) != 2 {
			return usagef("usage: infer <query>")
		}
		g, err := engine.InferGuard(args[1])
		if err != nil {
			return err
		}
		fmt.Println(g)
		return nil

	case "explain":
		if len(args) != 2 {
			return usagef("usage: explain <guard>")
		}
		tree, err := engine.Explain(args[1])
		if err != nil {
			return err
		}
		fmt.Print(tree)
		return nil
	}
	return usagef("unknown command %q (run with no arguments for usage)", args[0])
}

// dumpMetrics mirrors the store's block-I/O, buffer-pool, and operation
// counters into the default registry as gauges, then writes the full
// snapshot (pipeline histograms included) to stderr.
func dumpMetrics(o options, eng *engine.Engine) {
	w := o.metricsW
	if w == nil {
		w = os.Stderr
	}
	if eng != nil {
		engine.MirrorStoreStats(obs.Default, eng.Stats())
	}
	snap := obs.Default.Snapshot()
	if o.metricsFormat == "json" {
		raw, err := snap.JSON()
		if err != nil {
			fmt.Fprintln(w, "xmorph: metrics:", err)
			return
		}
		w.Write(raw)
		io.WriteString(w, "\n")
		return
	}
	io.WriteString(w, snap.Text())
}
