package main

import (
	"encoding/json"
	"errors"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"xmorph/internal/engine"
)

const sample = `<data>
  <book><title>X</title><author><name>V</name></author></book>
  <book><title>Y</title><author><name>U</name></author></book>
</data>`

func tempXML(t *testing.T) string {
	t.Helper()
	p := filepath.Join(t.TempDir(), "d.xml")
	if err := os.WriteFile(p, []byte(sample), 0o644); err != nil {
		t.Fatal(err)
	}
	return p
}

func opts(t *testing.T) options {
	return options{
		store:  filepath.Join(t.TempDir(), "t.db"),
		cache:  64,
		indent: false,
		quiet:  true,
	}
}

// capture redirects stdout during fn.
func capture(t *testing.T, fn func() error) (string, error) {
	t.Helper()
	old := os.Stdout
	r, w, err := os.Pipe()
	if err != nil {
		t.Fatal(err)
	}
	os.Stdout = w
	ferr := fn()
	w.Close()
	os.Stdout = old
	buf := make([]byte, 1<<20)
	n, _ := r.Read(buf)
	r.Close()
	return string(buf[:n]), ferr
}

func TestDispatchShredRunPipeline(t *testing.T) {
	o := opts(t)
	xml := tempXML(t)

	out, err := capture(t, func() error { return dispatch(o, []string{"shred", "books", xml}) })
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "shredded \"books\"") {
		t.Errorf("shred output: %s", out)
	}

	out, err = capture(t, func() error { return dispatch(o, []string{"docs"}) })
	if err != nil || strings.TrimSpace(out) != "books" {
		t.Errorf("docs = %q, err %v", out, err)
	}

	out, err = capture(t, func() error { return dispatch(o, []string{"shape", "books"}) })
	if err != nil || !strings.Contains(out, "data.book.author 1..1") {
		t.Errorf("shape = %q, err %v", out, err)
	}

	out, err = capture(t, func() error {
		return dispatch(o, []string{"run", "books", "MORPH author [ name title ]"})
	})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "<author><name>V</name><title>X</title></author>") {
		t.Errorf("run output: %s", out)
	}
}

func TestDispatchCheck(t *testing.T) {
	o := opts(t)
	xml := tempXML(t)
	if _, err := capture(t, func() error { return dispatch(o, []string{"shred", "books", xml}) }); err != nil {
		t.Fatal(err)
	}
	out, err := capture(t, func() error {
		return dispatch(o, []string{"check", "books", "MORPH author [ name ]"})
	})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "information-loss report") || !strings.Contains(out, "strongly-typed") {
		t.Errorf("check output: %s", out)
	}
}

func TestDispatchRunFileWithVerify(t *testing.T) {
	o := opts(t)
	o.verify = true
	xml := tempXML(t)
	out, err := capture(t, func() error {
		return dispatch(o, []string{"run-file", xml, "MORPH title"})
	})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "<title>X</title>") {
		t.Errorf("run-file output: %s", out)
	}
}

func TestDispatchInferAndExplain(t *testing.T) {
	o := opts(t)
	out, err := capture(t, func() error {
		return dispatch(o, []string{"infer", `for $a in doc("x")/author return $a/name`})
	})
	if err != nil || strings.TrimSpace(out) != "MORPH author [ name ]" {
		t.Errorf("infer = %q, err %v", out, err)
	}
	out, err = capture(t, func() error {
		return dispatch(o, []string{"explain", "MORPH author [ name ]"})
	})
	if err != nil || !strings.Contains(out, "closest") {
		t.Errorf("explain = %q, err %v", out, err)
	}
}

func TestDispatchErrors(t *testing.T) {
	o := opts(t)
	bad := [][]string{
		{"bogus"},
		{"shred", "onlyname"},
		{"shred", "x", "/no/such/file.xml"},
		{"run", "missing", "MORPH a"},
		{"shape", "missing"},
		{"run-file", "/no/such.xml", "MORPH a"},
		{"infer", "%%%"},
		{"explain", "MORPH ["},
		{"check", "x"},
	}
	for _, args := range bad {
		if _, err := capture(t, func() error { return dispatch(o, args) }); err == nil {
			t.Errorf("dispatch(%v) succeeded, want error", args)
		}
	}
}

func TestDispatchStreamAndDrop(t *testing.T) {
	o := opts(t)
	xml := tempXML(t)
	if _, err := capture(t, func() error { return dispatch(o, []string{"shred", "books", xml}) }); err != nil {
		t.Fatal(err)
	}
	so := o
	so.stream = true
	out, err := capture(t, func() error {
		return dispatch(so, []string{"run", "books", "MORPH title"})
	})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "<title>X</title>\n<title>Y</title>") {
		t.Errorf("streamed run: %q", out)
	}
	out, err = capture(t, func() error { return dispatch(o, []string{"drop", "books"}) })
	if err != nil || !strings.Contains(out, "dropped") {
		t.Errorf("drop = %q, err %v", out, err)
	}
	if _, err := capture(t, func() error { return dispatch(o, []string{"run", "books", "MORPH title"}) }); err == nil {
		t.Error("run after drop should fail")
	}
}

func TestDispatchQuery(t *testing.T) {
	o := opts(t)
	xml := tempXML(t)
	if _, err := capture(t, func() error { return dispatch(o, []string{"shred", "books", xml}) }); err != nil {
		t.Fatal(err)
	}
	out, err := capture(t, func() error {
		return dispatch(o, []string{"query", "books",
			"MORPH author [ name title ]",
			`for $a in doc("books")//author where $a/title = "X" return string($a/name)`})
	})
	if err != nil {
		t.Fatal(err)
	}
	if strings.TrimSpace(out) != "V" {
		t.Errorf("guarded query = %q, want V", out)
	}
	if _, err := capture(t, func() error {
		return dispatch(o, []string{"query", "books", "MORPH ["})
	}); err == nil {
		t.Error("bad query usage accepted")
	}
}

func TestUsageErrorsAreTyped(t *testing.T) {
	o := opts(t)
	usageCases := [][]string{
		{"bogus"},
		{"shred", "onlyname"},
		{"check", "x"},
		{"query", "books", "MORPH a"},
		{"infer"},
		{"explain"},
	}
	for _, args := range usageCases {
		_, err := capture(t, func() error { return dispatch(o, args) })
		var ue usageError
		if !errors.As(err, &ue) {
			t.Errorf("dispatch(%v) = %v, want usageError", args, err)
		}
	}
	// Runtime failures must NOT be usage errors (they exit 1, not 2).
	_, err := capture(t, func() error { return dispatch(o, []string{"shape", "missing"}) })
	if err == nil {
		t.Fatal("shape missing succeeded")
	}
	var ue usageError
	if errors.As(err, &ue) {
		t.Errorf("runtime failure classified as usage error: %v", err)
	}
}

func TestExtractTrailingFlags(t *testing.T) {
	var o options
	args, err := extractTrailingFlags([]string{"run", "books", "MORPH a", "--trace", "-metrics", "--metrics-format=json"}, &o)
	if err != nil {
		t.Fatal(err)
	}
	if len(args) != 3 || args[0] != "run" || args[2] != "MORPH a" {
		t.Errorf("positionals = %v", args)
	}
	if !o.trace || !o.metrics || o.metricsFormat != "json" {
		t.Errorf("flags not extracted: %+v", o)
	}
	if _, err := extractTrailingFlags([]string{"run", "books", "--quiet"}, &o); err == nil {
		t.Error("unknown trailing flag accepted")
	}
}

func TestTraceGolden(t *testing.T) {
	o := opts(t)
	o.trace = true
	o.zeroDur = true
	var trace strings.Builder
	o.traceW = &trace
	xml := tempXML(t)
	if _, err := capture(t, func() error {
		return dispatch(o, []string{"run-file", xml, "MORPH author [ name title ]"})
	}); err != nil {
		t.Fatal(err)
	}
	got := trace.String()
	golden := filepath.Join("testdata", "trace.golden")
	if os.Getenv("UPDATE_GOLDEN") != "" {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatal(err)
	}
	if got != string(want) {
		t.Errorf("trace mismatch:\n--- got ---\n%s--- want ---\n%s", got, want)
	}
}

// TestCLIMatchesService shreds through the CLI, then runs the same guard
// through the CLI and through the xmorphd HTTP API over the same store
// file: the XML and the loss report must match byte for byte (Section
// VIII's examples travel both paths).
func TestCLIMatchesService(t *testing.T) {
	o := opts(t)
	o.indent = false
	xml := tempXML(t)
	if _, err := capture(t, func() error { return dispatch(o, []string{"shred", "books", xml}) }); err != nil {
		t.Fatal(err)
	}

	guards := []string{
		"MORPH author [ name title ]",
		"MORPH title",
		"CAST MORPH book [ author [ name ] ]",
	}
	for _, g := range guards {
		cliXML, err := capture(t, func() error { return dispatch(o, []string{"run", "books", g}) })
		if err != nil {
			t.Fatalf("%s: %v", g, err)
		}

		eng, err := engine.Open(o.store, engine.WithCachePages(o.cache))
		if err != nil {
			t.Fatal(err)
		}
		ts := httptest.NewServer(engine.NewServer(eng, engine.ServerConfig{}).Handler())
		resp, err := http.Post(ts.URL+"/v1/query", "application/json",
			strings.NewReader(`{"doc":"books","guard":`+strconvQuote(g)+`}`))
		if err != nil {
			t.Fatal(err)
		}
		var served struct {
			XML  string `json:"xml"`
			Loss string `json:"loss"`
		}
		if err := json.NewDecoder(resp.Body).Decode(&served); err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		ts.Close()

		if served.XML != cliXML {
			t.Errorf("guard %q: served XML differs from CLI:\n%q\nvs\n%q", g, served.XML, cliXML)
		}
		checked, err := eng.Check(nil, "books", g, nil)
		if err != nil {
			t.Fatal(err)
		}
		if served.Loss != checked.Loss.String() {
			t.Errorf("guard %q: served loss report differs:\n%q\nvs\n%q", g, served.Loss, checked.Loss.String())
		}
		eng.Close()
	}
}

func strconvQuote(s string) string {
	raw, _ := json.Marshal(s)
	return string(raw)
}

func TestMetricsDump(t *testing.T) {
	o := opts(t)
	o.metrics = true
	var metrics strings.Builder
	o.metricsW = &metrics
	xml := tempXML(t)
	if _, err := capture(t, func() error { return dispatch(o, []string{"shred", "books", xml}) }); err != nil {
		t.Fatal(err)
	}
	out := metrics.String()
	for _, want := range []string{"kvstore_blocks_written", "kvstore_cache_hit_ratio", "xmorph_transforms_total"} {
		if !strings.Contains(out, want) {
			t.Errorf("metrics dump missing %q:\n%s", want, out)
		}
	}

	o.metricsFormat = "json"
	metrics.Reset()
	if _, err := capture(t, func() error { return dispatch(o, []string{"docs"}) }); err != nil {
		t.Fatal(err)
	}
	var parsed map[string]any
	if err := json.Unmarshal([]byte(metrics.String()), &parsed); err != nil {
		t.Errorf("metrics json does not parse: %v", err)
	}
}

func TestTracedStoredRun(t *testing.T) {
	o := opts(t)
	o.trace = true
	var trace strings.Builder
	o.traceW = &trace
	xml := tempXML(t)
	if _, err := capture(t, func() error { return dispatch(o, []string{"shred", "books", xml}) }); err != nil {
		t.Fatal(err)
	}
	trace.Reset()
	if _, err := capture(t, func() error {
		return dispatch(o, []string{"run", "books", "MORPH author [ name title ]"})
	}); err != nil {
		t.Fatal(err)
	}
	got := trace.String()
	if !strings.HasPrefix(got, "run ") {
		t.Errorf("trace root is not the run command:\n%s", got)
	}
	for _, want := range []string{"load-shape", "pages-read=", "compile", "typecheck", "loss-check", "render", "joins=", "nodes-out="} {
		if !strings.Contains(got, want) {
			t.Errorf("stored-run trace missing %q:\n%s", want, got)
		}
	}
}
