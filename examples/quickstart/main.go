// Quickstart: the paper's Section I story end to end. One query guard —
//
//	MORPH author [ name book [ title ] ]
//
// — is applied to the three differently-shaped data instances of Figure 1.
// Instances (a) and (b) transform to identical XML; instance (c) differs
// only in how authors group their books (Figure 2). The guard is
// strongly-typed on all three: no data is created or lost.
package main

import (
	"fmt"
	"log"

	"xmorph/internal/core"
)

var instances = map[string]string{
	"(a) titles group authors and publishers": `<data>
	  <book>
	    <title>X</title>
	    <author><name>V</name></author>
	    <publisher><name>W</name></publisher>
	  </book>
	  <book>
	    <title>Y</title>
	    <author><name>V</name></author>
	    <publisher><name>W</name></publisher>
	  </book>
	</data>`,
	"(b) publisher groups the books": `<data>
	  <publisher>
	    <name>W</name>
	    <book>
	      <title>X</title>
	      <author><name>V</name></author>
	    </book>
	    <book>
	      <title>Y</title>
	      <author><name>V</name></author>
	    </book>
	  </publisher>
	</data>`,
	"(c) normalized: authors group their books": `<data>
	  <author>
	    <name>V</name>
	    <book>
	      <title>X</title>
	      <publisher><name>W</name></publisher>
	    </book>
	    <book>
	      <title>Y</title>
	      <publisher><name>W</name></publisher>
	    </book>
	  </author>
	</data>`,
}

func main() {
	const guard = "MORPH author [ name book [ title ] ]"
	fmt.Printf("query guard: %s\n\n", guard)

	for _, key := range []string{
		"(a) titles group authors and publishers",
		"(b) publisher groups the books",
		"(c) normalized: authors group their books",
	} {
		res, err := core.TransformString(guard, instances[key])
		if err != nil {
			log.Fatalf("instance %s: %v", key, err)
		}
		fmt.Printf("--- instance %s ---\n", key)
		fmt.Printf("verdict: %s\n", res.Loss.Verdict)
		fmt.Println(res.Output.XML(true))
		fmt.Println()
	}

	fmt.Println("The same guard produced the same book/author data from three")
	fmt.Println("shapes a plain XQuery path expression could not span.")
}
