// Streamxform: transforming a large document through the shredded store.
// An XMark auction site is generated, shredded to disk (one pass, memory
// bounded by document depth), and then morphed. The guard touches only
// four of the document's ~200 types, so the renderer reads only those key
// ranges — the "read cost linear in the output" property of Section VII.
// Block I/O counters before and after show how little of the store a
// narrow guard touches compared to a full dump.
package main

import (
	"fmt"
	"io"
	"log"
	"os"
	"path/filepath"
	"strings"

	"xmorph/internal/core"
	"xmorph/internal/gen/xmark"
	"xmorph/internal/store"
)

func main() {
	dir, err := os.MkdirTemp("", "streamxform")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)

	// Generate and shred an auction site (~15k nodes at factor 0.01).
	doc := xmark.Generate(xmark.Config{Factor: 0.01, Seed: 1})
	xml := doc.XML(false)
	fmt.Printf("generated XMark factor 0.01: %d nodes, %d types, %.2f MB\n",
		doc.Size(), len(doc.Types()), float64(len(xml))/(1<<20))

	st, err := store.Open(filepath.Join(dir, "xmark.db"), store.WithCachePages(64))
	if err != nil {
		log.Fatal(err)
	}
	defer st.Close()
	info, err := st.Shred("xmark", strings.NewReader(xml), nil)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("shredded: %d nodes across %d type sequences\n\n", info.Nodes, info.Types)

	// A narrow guard: gather each person with the auctions they bid in.
	const guard = "CAST MORPH person [ name emailaddress ]"
	before := st.Stats()
	res, err := core.TransformStored(guard, st, "xmark", nil)
	if err != nil {
		log.Fatal(err)
	}
	if err := res.Output.WriteXML(io.Discard, false); err != nil {
		log.Fatal(err)
	}
	after := st.Stats()
	fmt.Printf("guard: %s\n", guard)
	fmt.Printf("output: %d elements; compile %v, render %v\n",
		res.Output.Size(), res.CompileTime, res.RenderTime)
	fmt.Printf("blocks read for the narrow guard: %d\n\n", after.BlocksRead-before.BlocksRead)

	// Compare: a full document dump reads every type sequence.
	before = st.Stats()
	d, err := st.Doc("xmark")
	if err != nil {
		log.Fatal(err)
	}
	re, err := d.Reconstruct()
	if err != nil {
		log.Fatal(err)
	}
	if err := re.WriteXML(io.Discard, false); err != nil {
		log.Fatal(err)
	}
	after = st.Stats()
	fmt.Printf("blocks read for the full dump: %d\n", after.BlocksRead-before.BlocksRead)
	fmt.Println("\nthe narrow guard touched only its own type sequences.")
}
