// Lossreport: the information-loss feedback workflow of Section V-B.
//
// The library data has authors whose <name> is optional (the author->name
// edge has cardinality 0..1). The guard MUTATE name [ author ] makes every
// author a child of a name — so authors without names would silently
// vanish. XMorph detects this from the shapes alone, reports exactly which
// path is responsible, and refuses to run without a cast. The fixed guard
// MUTATE data [ name author ] keeps both types at the top and passes.
package main

import (
	"fmt"
	"log"

	"xmorph/internal/core"
	"xmorph/internal/loss"
	"xmorph/internal/shape"
	"xmorph/internal/xmltree"
)

const data = `<data>
  <book><author><title>An Anonymous Work</title></author></book>
  <book><author><name>V</name><title>A Signed Work</title></author></book>
</data>`

func main() {
	doc := xmltree.MustParse(data)
	sh := shape.FromDocument(doc)
	fmt.Println("adorned shape of the data (note author -> name is 0..1):")
	fmt.Println(sh)

	// 1) The lossy guard is detected statically: no data is read.
	// core.Analyze reports without enforcing; core.Check would reject.
	lossy := "MUTATE name [ author ]"
	checked, err := core.Analyze(lossy, sh, nil)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("guard: %s\n%s\n", lossy, checked.Loss)
	if checked.Loss.Verdict == loss.StronglyTyped {
		log.Fatal("expected a lossy verdict")
	}
	if _, err := core.Check(lossy, sh, nil); err == nil {
		log.Fatal("strict mode should reject the guard")
	} else {
		fmt.Printf("strict mode rejects it:\n  %v\n\n", err)
	}

	// 2) Rendering it anyway (CAST) shows the loss the report predicted.
	res, err := core.TransformString("CAST "+lossy, data)
	if err != nil {
		log.Fatal(err)
	}
	authors := 0
	for _, n := range res.Output.Nodes() {
		if n.Name == "author" {
			authors++
		}
	}
	fmt.Printf("forced with CAST: %d of 2 authors survive:\n%s\n\n", authors, res.Output.XML(true))

	// 3) The paper's fix: hang both types below data. This is INCLUSIVE —
	// no author or name is dropped — though still widening (a name hoisted
	// to the top is now closest to every book), so it runs under
	// CAST-WIDENING: the programmer accepts created relationships but
	// rules out losing data.
	fixed := "CAST-WIDENING MUTATE data [ name author ]"
	resFixed, err := core.TransformString(fixed, data)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("guard: %s\n%s", fixed, resFixed.Loss)
	if !resFixed.Loss.Inclusive {
		log.Fatal("the fix must be inclusive")
	}
	fmt.Println("inclusive: no data can be lost")
	fmt.Println(resFixed.Output.XML(true))
}
