// Inferguard: deriving the query guard from the query itself — the guard
// inference the paper's Section X lists as an open problem. The label
// paths an XQuery query traverses become the MORPH pattern it needs; the
// inferred guard is then type-checked and run like a hand-written one,
// closing the loop: write the query once, run it on any shape.
package main

import (
	"fmt"
	"log"

	"xmorph/internal/core"
	"xmorph/internal/infer"
	"xmorph/internal/xmltree"
	"xmorph/internal/xq"
)

// Three arrangements of the same facts (Figure 1 of the paper).
var shapes = []struct {
	name string
	xml  string
}{
	{"titles on top", `<data>
	  <book><title>X</title><author><name>V</name></author></book>
	  <book><title>Y</title><author><name>U</name></author></book>
	</data>`},
	{"publisher on top", `<data>
	  <publisher><name>W</name>
	    <book><title>X</title><author><name>V</name></author></book>
	    <book><title>Y</title><author><name>U</name></author></book>
	  </publisher>
	</data>`},
	{"authors on top", `<data>
	  <author><name>V</name><book><title>X</title></book></author>
	  <author><name>U</name><book><title>Y</title></book></author>
	</data>`},
}

const query = `for $a in doc("d.xml")//author
where $a/book/title = "X"
return string($a/name)`

func main() {
	g, err := infer.FromQuery(query)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("query:\n%s\n\ninferred guard: %s\n\n", query, g)

	for _, s := range shapes {
		doc := xmltree.MustParse(s.xml)
		res, err := core.Transform("CAST "+g, doc, nil)
		if err != nil {
			log.Fatalf("%s: %v", s.name, err)
		}
		wrapped := xmltree.MustParse("<w>" + res.Output.XML(false) + "</w>")
		e := xq.New()
		e.Bind("d.xml", wrapped)
		out, err := e.QueryXML(query)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-18s -> verdict %-14s -> query answer: %q\n",
			s.name, res.Loss.Verdict, out)
	}

	fmt.Println("\nOne query, one inferred guard, three shapes, one answer.")
}
