// Queryguard: a guard protecting an XQuery query (the paper's central
// workflow). The query
//
//	for $a in doc("books.xml")/author
//	where $a/book/title = "X"
//	return <hit>{$a/name}</hit>
//
// needs authors with name and book/title children. The data is shaped like
// Figure 1(b) (publisher groups books), so the query alone finds nothing.
// The guard
//
//	MORPH author [ name book [ title ] ]
//
// first checks that the reshaping loses no information, transforms the
// data, and only then lets the query run — against the shape it expects.
package main

import (
	"fmt"
	"log"

	"xmorph/internal/core"
	"xmorph/internal/xmltree"
	"xmorph/internal/xq"
)

const data = `<data>
  <publisher>
    <name>W</name>
    <book>
      <title>X</title>
      <author><name>V</name></author>
    </book>
    <book>
      <title>Y</title>
      <author><name>U</name></author>
    </book>
  </publisher>
</data>`

const query = `for $a in doc("books.xml")/author
where $a/book/title = "X"
return <hit>{$a/name}</hit>`

func main() {
	doc := xmltree.MustParse(data)
	engine := xq.New()

	// 1) The unguarded query fails silently: the data has the wrong shape.
	engine.Bind("books.xml", doc)
	raw, err := engine.QueryXML(query)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("without guard: %q (the shape defeated the query)\n\n", raw)

	// 2) Guard the query: transform to the needed shape first.
	const guard = "MORPH author [ name book [ title ] ]"
	res, err := core.Transform(guard, doc, nil)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("guard: %s\nverdict: %s\n", guard, res.Loss.Verdict)
	fmt.Printf("label report:\n%s\n", res.LabelReport())

	// The rendered output is a forest of authors; wrap it for doc().
	guarded := xmltree.MustParse("<authors>" + res.Output.XML(false) + "</authors>")
	engine2 := xq.New()
	engine2.Bind("books.xml", guarded)
	hits, err := engine2.QueryXML(`for $a in doc("books.xml")/author
	where $a/book/title = "X"
	return <hit>{$a/name}</hit>`)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("with guard: %s\n\n", hits)

	// 3) A lossy guard is rejected before any data moves. Putting titles
	//    directly under authors in instance-(c)-like data would duplicate
	//    publishers; the strict default refuses, CAST-WIDENING accepts.
	lossy := "MORPH author [ title name publisher [ name ] ]"
	if _, err := core.Transform(lossy, doc, nil); err != nil {
		fmt.Printf("lossy guard rejected as designed:\n  %v\n\n", err)
	}
	res3, err := core.Transform("CAST-WIDENING "+lossy, doc, nil)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("with CAST-WIDENING the programmer accepts the widening:\n%s\n", res3.Output.XML(true))
}
