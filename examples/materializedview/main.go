// Materializedview: keeping a transformed document consistent with its
// source — the mitigation Section VIII sketches for the cost of physical
// transformation ("materializing the transformation and mapping XUpdate
// operations to updates of the transformation").
//
// A catalog shaped like Figure 1(b) is materialized as an author-centric
// view. A price correction (a value update) lands in every rendered copy
// without re-rendering; adding a book (a structural update) is absorbed
// by patching the rendered output in place — the closest relation is
// structural, so an insert only creates pairs involving the new
// vertices. Only edits that change what the guard compiles to fall back
// to a lazy full re-render.
package main

import (
	"fmt"
	"log"

	"xmorph/internal/view"
	"xmorph/internal/xmltree"
)

const catalog = `<data>
  <publisher><name>W</name>
    <book><title>X</title><price>30</price><author><name>V</name></author></book>
    <book><title>Y</title><price>10</price><author><name>U</name></author></book>
  </publisher>
</data>`

func main() {
	v, err := view.Materialize("CAST MORPH author [ name book [ title price ] ]",
		xmltree.MustParse(catalog))
	if err != nil {
		log.Fatal(err)
	}
	out, err := v.Output()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("materialized view:")
	fmt.Println(out.XML(true))

	// XUpdate case 1: a text update. 1.1.2.2 is the first book's price
	// (data 1 -> publisher 1.1 -> book 1.1.2 -> price 1.1.2.2).
	at, _ := xmltree.ParseDewey("1.1.2.2")
	if err := v.UpdateValue(at, "25"); err != nil {
		log.Fatal(err)
	}
	out, _ = v.Output()
	fmt.Printf("after price correction (renders so far: %d):\n", v.Renders())
	fmt.Println(out.XML(true))

	// XUpdate case 2: a structural insert under the publisher (1.1).
	pub, _ := xmltree.ParseDewey("1.1")
	if err := v.InsertSubtree(pub,
		`<book><title>Z</title><price>40</price><author><name>T</name></author></book>`); err != nil {
		log.Fatal(err)
	}
	out, err = v.Output()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("after inserting a book: stale=%v renders=%d patches=%d\n",
		v.Stale(), v.Renders(), v.Patches())
	fmt.Println(out.XML(true))
}
